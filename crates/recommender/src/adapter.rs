//! AccuracyTrader adapter for the CF recommender.
//!
//! Maps the paper's recommender semantics onto the [`ApproximateService`]
//! hooks:
//!
//! * **Correlation estimate** `c_i` — the Pearson weight between the active
//!   user and an *aggregated user* (ranked by magnitude: the paper calls an
//!   original user highly related when its weight is > 0.8 or < −0.8).
//! * **Initial result** — the weighted-average prediction computed over the
//!   aggregated users, each standing in for `member_count` originals.
//! * **Improvement** — replace one aggregated user's estimated contribution
//!   with the exact contributions of its member users.

use at_core::{ApproximateService, ComposableService, Correlation, Ctx};
use at_linalg::BlockedRow;
use at_rtree::NodeId;

use crate::predict::{
    accumulate_neighbor_blocked, user_weight, user_weight_blocked, PredictionAcc,
};
use crate::ratings::ActiveUser;

/// The user-based CF service, AccuracyTrader-enabled.
///
/// The per-request path computes each neighbour's Pearson weight **exactly
/// once** (it serves both as the correlation estimate and the prediction
/// weight) and reads neighbour means from the stores' cached
/// [`at_linalg::RowStats`] — no per-neighbour allocation or value rescans.
/// Both kernels run block-aligned ([`user_weight_blocked`] /
/// [`accumulate_neighbor_blocked`]) over the blocked renderings cached in
/// the stores and the request — bit-identical to the scalar merges, so the
/// layout is purely a perf decision.
///
/// Batch-aware: `process_synopsis_batch` makes **one** pass over the
/// synopsis shared by every request of a batch (aggregated users outer,
/// requests inner — bit-identical to the per-request pass), cache-tiled
/// over the request dimension so a tile's accumulators stay L1-resident
/// across the whole synopsis stream, and `process_synopsis_into` resets
/// recycled accumulator buffers in place so pooled serving allocates
/// nothing for outputs.
#[derive(Clone, Copy, Debug, Default)]
pub struct CfService;

/// Reset a (possibly recycled) accumulator to one zeroed slot per target.
fn reset_acc(acc: &mut Vec<PredictionAcc>, req: &ActiveUser) {
    acc.clear();
    acc.resize(req.targets.len(), PredictionAcc::default());
}

/// Process one aggregated user for one request: push its correlation
/// estimate and fold its estimated contribution into the accumulator. The
/// single op sequence shared by the per-request and batched stage-1 passes,
/// so both produce bit-identical results.
fn synopsis_step(
    req: &ActiveUser,
    p: &at_synopsis::AggregatedPoint,
    pb: &BlockedRow,
    stats: at_linalg::RowStats,
    corr: &mut Vec<Correlation>,
    acc: &mut [PredictionAcc],
) {
    // One weight per aggregated user: it is both the correlation
    // estimate c_i and the prediction weight.
    let (w, _) = user_weight_blocked(req.profile_blocked(), pb);
    corr.push(Correlation {
        node: p.node,
        score: w.abs(),
    });
    accumulate_neighbor_blocked(
        req.targets_blocked(),
        pb,
        w,
        stats.mean(),
        p.member_count as f64,
        acc,
    );
}

impl ApproximateService for CfService {
    type Request = ActiveUser;
    type Output = Vec<PredictionAcc>;

    fn process_synopsis(
        &self,
        ctx: Ctx<'_>,
        req: &ActiveUser,
        corr: &mut Vec<Correlation>,
    ) -> Self::Output {
        // lint: allow(hot-path-alloc) reason=cold entry point; the warm path is process_synopsis_into on a pooled buffer
        let mut acc = Vec::new();
        self.process_synopsis_into(ctx, req, corr, &mut acc);
        acc
    }

    fn process_synopsis_into(
        &self,
        ctx: Ctx<'_>,
        req: &ActiveUser,
        corr: &mut Vec<Correlation>,
        out: &mut Self::Output,
    ) {
        reset_acc(out, req);
        let synopsis = ctx.store.synopsis();
        corr.reserve(synopsis.len());
        for ((p, stats), pb) in synopsis
            .points_with_stats()
            .iter()
            .zip(synopsis.points_blocked())
        {
            synopsis_step(req, p, pb, *stats, corr, out);
        }
    }

    fn process_synopsis_batch(
        &self,
        ctx: Ctx<'_>,
        reqs: &[ActiveUser],
        corrs: &mut [Vec<Correlation>],
        outs: &mut Vec<Self::Output>,
    ) {
        at_core::prepare_outputs(
            outs,
            reqs.len(),
            |out, i| reset_acc(out, &reqs[i]),
            // lint: allow(hot-path-alloc) reason=pool-miss fallback, runs once per buffer ever in flight; warm batches take the reset branch
            |i| vec![PredictionAcc::default(); reqs[i].targets.len()],
        );
        let synopsis = ctx.store.synopsis();
        let points = synopsis.points_with_stats();
        let blocked = synopsis.points_blocked();
        for corr in corrs.iter_mut() {
            corr.reserve(points.len());
        }
        // Cache-tiled pass: requests are cut into tiles sized once per
        // batch (from the batch width and the mean aggregated-row nnz) so
        // one tile's accumulators and profiles stay L1-resident while the
        // whole synopsis streams past; within a tile the loop is still
        // points-outer/requests-inner, so every request sees every point
        // in node-id order and the per-request op order matches
        // `process_synopsis_into` exactly — tiling moves no FP bits.
        let total_nnz: usize = points.iter().map(|(_, s)| s.nnz).sum();
        let tile = at_core::batch_tile_span(reqs.len(), total_nnz / points.len().max(1));
        let mut start = 0usize;
        while start < reqs.len() {
            let end = (start + tile).min(reqs.len());
            for ((p, stats), pb) in points.iter().zip(blocked) {
                for ((req, corr), out) in reqs[start..end]
                    .iter()
                    .zip(corrs[start..end].iter_mut())
                    .zip(outs[start..end].iter_mut())
                {
                    synopsis_step(req, p, pb, *stats, corr, out);
                }
            }
            start = end;
        }
    }

    fn improve(
        &self,
        ctx: Ctx<'_>,
        req: &ActiveUser,
        out: &mut Self::Output,
        node: NodeId,
        members: &[u64],
    ) {
        // Back out the aggregated user's estimated contribution...
        if let Some((p, stats, pb)) = ctx.store.synopsis().point_full(node) {
            let (w, _) = user_weight_blocked(req.profile_blocked(), pb);
            accumulate_neighbor_blocked(
                req.targets_blocked(),
                pb,
                w,
                stats.mean(),
                -(p.member_count as f64),
                out,
            );
        }
        // ...and put in the exact contributions of its original users.
        for &m in members {
            let rb = ctx.dataset.row_blocked(m);
            let (w, _) = user_weight_blocked(req.profile_blocked(), rb);
            accumulate_neighbor_blocked(
                req.targets_blocked(),
                rb,
                w,
                ctx.dataset.row_stats(m).mean(),
                1.0,
                out,
            );
        }
    }

    fn process_exact(&self, ctx: Ctx<'_>, req: &ActiveUser) -> Self::Output {
        let mut acc = vec![PredictionAcc::default(); req.targets.len()];
        for id in ctx.dataset.ids() {
            let rb = ctx.dataset.row_blocked(id);
            let (w, _) = user_weight_blocked(req.profile_blocked(), rb);
            accumulate_neighbor_blocked(
                req.targets_blocked(),
                rb,
                w,
                ctx.dataset.row_stats(id).mean(),
                1.0,
                &mut acc,
            );
        }
        acc
    }
}

impl ComposableService for CfService {
    type Response = Vec<f64>;

    /// Merge per-component partial sums into final predictions (one per
    /// target), using the active user's mean as the baseline — the paper's
    /// composing component for the recommender.
    fn compose(&self, req: &ActiveUser, parts: &[Vec<PredictionAcc>]) -> Vec<f64> {
        let mut total = vec![PredictionAcc::default(); req.targets.len()];
        for part in parts {
            assert_eq!(part.len(), total.len(), "component output arity mismatch");
            for (t, p) in total.iter_mut().zip(part) {
                t.merge(p);
            }
        }
        let mean = req.mean_rating();
        total.iter().map(|a| a.predict(mean)).collect()
    }
}

/// Figure 4(a) analysis: rank aggregated users by |weight| to `req`, split
/// into `n_sections`, and return each section's percentage of *original*
/// users that are highly related (|weight| > `threshold`, paper: 0.8).
pub fn section_relatedness(
    ctx: Ctx<'_>,
    req: &ActiveUser,
    threshold: f64,
    n_sections: usize,
) -> Vec<f64> {
    let service = CfService;
    let mut corr = Vec::new();
    service.process_synopsis(ctx, req, &mut corr);
    let ranked = at_core::rank(corr);
    let sections = at_core::sections(&ranked, n_sections);
    sections
        .iter()
        .map(|sec| {
            let mut related = 0usize;
            let mut total = 0usize;
            for c in *sec {
                let members = ctx.store.index().members(c.node).expect("indexed node");
                for &m in members {
                    let (w, _) = user_weight(&req.profile, ctx.dataset.row(m));
                    if w.abs() > threshold {
                        related += 1;
                    }
                    total += 1;
                }
            }
            if total == 0 {
                0.0
            } else {
                related as f64 / total as f64 * 100.0
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ratings::rating_matrix;
    use at_core::{Component, ExecutionPolicy};
    use at_linalg::svd::SvdConfig;
    use at_synopsis::{AggregationMode, SparseRow, SynopsisConfig};
    use at_workloads::{RatingsConfig, RatingsDataset};
    use std::time::Instant;

    fn component() -> (Component<CfService>, RatingsDataset) {
        let data = RatingsDataset::generate(RatingsConfig {
            n_users: 300,
            n_items: 80,
            ratings_per_user: 30,
            ..RatingsConfig::small()
        });
        let matrix = rating_matrix(300, 80, &data.ratings);
        let cfg = SynopsisConfig {
            svd: SvdConfig::default().with_epochs(25),
            size_ratio: 15,
            ..SynopsisConfig::default()
        };
        let (c, _) = Component::build(matrix, AggregationMode::Mean, cfg, CfService);
        (c, data)
    }

    fn compose(req: &ActiveUser, parts: &[Vec<PredictionAcc>]) -> Vec<f64> {
        CfService.compose(req, parts)
    }

    fn active(data: &RatingsDataset, user: u32, targets: Vec<u32>) -> ActiveUser {
        let pairs: Vec<(u32, f64)> = data
            .ratings
            .iter()
            .filter(|r| r.user == user && !targets.contains(&r.item))
            .map(|r| (r.item, r.stars))
            .collect();
        ActiveUser::new(SparseRow::from_pairs(pairs), targets)
    }

    #[test]
    fn full_budget_matches_exact() {
        let (c, data) = component();
        let req = active(&data, 3, vec![1, 5, 9]);
        let approx = c.execute(&req, &ExecutionPolicy::budgeted(usize::MAX), Instant::now());
        let exact = c.execute(&req, &ExecutionPolicy::Exact, Instant::now());
        let pa = compose(&req, &[approx.output]);
        let pe = compose(&req, &[exact.output]);
        for (a, e) in pa.iter().zip(&pe) {
            assert!(
                (a - e).abs() < 1e-6,
                "fully-improved approx must equal exact: {a} vs {e}"
            );
        }
    }

    #[test]
    fn zero_budget_predictions_are_plausible() {
        let (c, data) = component();
        let req = active(&data, 10, vec![2, 4]);
        let o = c.execute(&req, &ExecutionPolicy::SynopsisOnly, Instant::now());
        let preds = compose(&req, &[o.output]);
        for p in preds {
            assert!((1.0..=5.0).contains(&p));
        }
    }

    #[test]
    fn more_budget_reduces_error_vs_exact() {
        let (c, data) = component();
        // Average |approx - exact| over several users and targets must not
        // increase with budget.
        let mut err_by_budget = Vec::new();
        for budget in [0usize, 2, usize::MAX] {
            let mut err = 0.0;
            let mut n = 0;
            for user in [1u32, 7, 21, 40] {
                let req = active(&data, user, vec![0, 3, 6]);
                let approx = compose(
                    &req,
                    &[
                        c.execute(&req, &ExecutionPolicy::budgeted(budget), Instant::now())
                            .output,
                    ],
                );
                let exact = compose(
                    &req,
                    &[c.execute(&req, &ExecutionPolicy::Exact, Instant::now())
                        .output],
                );
                for (a, e) in approx.iter().zip(&exact) {
                    err += (a - e).abs();
                    n += 1;
                }
            }
            err_by_budget.push(err / n as f64);
        }
        assert!(
            err_by_budget[2] <= err_by_budget[0] + 1e-9,
            "error must shrink with budget: {err_by_budget:?}"
        );
        assert!(err_by_budget[2] < 1e-9, "full budget must be exact");
    }

    #[test]
    fn correlations_are_weight_magnitudes() {
        let (c, data) = component();
        let req = active(&data, 5, vec![0]);
        let svc = CfService;
        let mut corr = Vec::new();
        svc.process_synopsis(c.ctx(), &req, &mut corr);
        assert_eq!(corr.len(), c.store().synopsis().len());
        for cr in &corr {
            assert!((0.0..=1.0).contains(&cr.score), "|w| out of range");
        }
    }

    #[test]
    fn section_relatedness_decreases_with_rank() {
        // Needs a fine-grained synopsis: with only ~3 aggregated points,
        // sections would be degenerate. size_ratio 6 -> ~26 groups here.
        let data = RatingsDataset::generate(RatingsConfig {
            n_users: 300,
            n_items: 80,
            ratings_per_user: 30,
            ..RatingsConfig::small()
        });
        let matrix = rating_matrix(300, 80, &data.ratings);
        let cfg = SynopsisConfig {
            svd: SvdConfig::default().with_epochs(25),
            size_ratio: 6,
            ..SynopsisConfig::default()
        };
        let (c, _) = Component::build(matrix, AggregationMode::Mean, cfg, CfService);
        assert!(c.store().synopsis().len() >= 12, "need enough groups");
        // Average over several active users like the paper's 1000.
        let mut first = 0.0;
        let mut last = 0.0;
        let mut n = 0;
        for user in (0..60u32).step_by(5) {
            let req = active(&data, user, vec![0]);
            let sec = section_relatedness(c.ctx(), &req, 0.5, 4);
            first += sec[0];
            last += sec[3];
            n += 1;
        }
        first /= n as f64;
        last /= n as f64;
        assert!(
            first > last,
            "top-ranked sections must hold more related users: first {first}% vs last {last}%"
        );
    }

    #[test]
    fn batched_stage1_is_bit_identical_to_per_request() {
        let (c, data) = component();
        let svc = CfService;
        let reqs: Vec<ActiveUser> = [(3u32, vec![1, 5]), (10, vec![2]), (21, vec![0, 3, 6])]
            .into_iter()
            .map(|(u, t)| active(&data, u, t))
            .collect();
        let mut corrs = vec![Vec::new(); reqs.len()];
        // Seed one recycled buffer (stale contents) to prove the reset.
        let mut outs = vec![vec![PredictionAcc { num: 9.0, den: 9.0 }; 7]];
        svc.process_synopsis_batch(c.ctx(), &reqs, &mut corrs, &mut outs);
        assert_eq!(outs.len(), reqs.len());
        for ((req, corr), out) in reqs.iter().zip(&corrs).zip(&outs) {
            let mut want_corr = Vec::new();
            let want_out = svc.process_synopsis(c.ctx(), req, &mut want_corr);
            assert_eq!(corr.len(), want_corr.len());
            for (a, b) in corr.iter().zip(&want_corr) {
                assert_eq!(a.node, b.node);
                assert_eq!(
                    a.score.to_bits(),
                    b.score.to_bits(),
                    "scores must be bit-identical"
                );
            }
            assert_eq!(out.len(), want_out.len());
            for (a, b) in out.iter().zip(&want_out) {
                assert_eq!(a.num.to_bits(), b.num.to_bits());
                assert_eq!(a.den.to_bits(), b.den.to_bits());
            }
        }
    }

    #[test]
    fn compose_merges_components() {
        let (c, data) = component();
        let req = active(&data, 2, vec![1]);
        let exact = c
            .execute(&req, &ExecutionPolicy::Exact, Instant::now())
            .output;
        // Splitting one component's output into two halves then composing
        // must equal composing the whole.
        let whole = compose(&req, std::slice::from_ref(&exact));
        let half: Vec<PredictionAcc> = exact
            .iter()
            .map(|a| PredictionAcc {
                num: a.num / 2.0,
                den: a.den / 2.0,
            })
            .collect();
        let split = compose(&req, &[half.clone(), half]);
        assert!((whole[0] - split[0]).abs() < 1e-9);
    }
}

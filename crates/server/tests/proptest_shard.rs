//! Property-based tests for the sharded-serving front end.
//!
//! * **Hash affinity preserves answers**: routing a duplicate-heavy zipf
//!   stream across N replicated workers (stealing on or off) produces
//!   responses byte-equivalent to the single-worker batched path — i.e.
//!   to `serve_at` with the same submitted instant — under clock-free
//!   policies. Placement must never change *what* a request answers.
//! * **Work stealing is exactly-once**: across worker panics and
//!   supervised restarts, every submitted ticket resolves exactly once —
//!   either with its own request's correct answer or with a cancellation
//!   error — and the cluster's counters conserve (nothing is double-
//!   delivered by a thief and its victim, nothing vanishes).

use std::time::Instant;

use at_core::{
    partition_rows, ApproximateService, ComposableService, Correlation, Ctx, ExecutionPolicy,
    FanOutService,
};
use at_server::{RoutingStrategy, ServerConfig, ShardConfig, ShardedServer};
use at_synopsis::{AggregationMode, SparseRow, SynopsisConfig};
use proptest::prelude::*;

/// Toy composable service: counts original rows each component processed
/// (the shape used across at-core's and at-server's own tests).
#[derive(Clone)]
struct CountService;

impl ApproximateService for CountService {
    type Request = u32;
    type Output = usize;

    fn process_synopsis(&self, ctx: Ctx<'_>, r: &u32, corr: &mut Vec<Correlation>) -> usize {
        corr.extend(ctx.store.synopsis().iter().map(|p| Correlation {
            node: p.node,
            score: p.member_count as f64 + (*r % 3) as f64,
        }));
        0
    }

    fn improve(
        &self,
        _ctx: Ctx<'_>,
        _r: &u32,
        out: &mut usize,
        _node: at_rtree::NodeId,
        members: &[u64],
    ) {
        *out += members.len();
    }

    fn process_exact(&self, ctx: Ctx<'_>, _r: &u32) -> usize {
        ctx.dataset.len()
    }
}

impl ComposableService for CountService {
    type Response = usize;

    fn compose(&self, r: &u32, parts: &[usize]) -> usize {
        parts.iter().sum::<usize>() + *r as usize
    }
}

/// Like [`CountService`] but the composer panics on the poison request —
/// the crash arrives *after* sub-operations succeed, which is the worst
/// spot for a thief: the stolen batch dies mid-flight on foreign data.
#[derive(Clone)]
struct PoisonCompose;

const POISON: u32 = 666;

impl ApproximateService for PoisonCompose {
    type Request = u32;
    type Output = usize;

    fn process_synopsis(&self, _ctx: Ctx<'_>, _r: &u32, _corr: &mut Vec<Correlation>) -> usize {
        0
    }

    fn improve(
        &self,
        _ctx: Ctx<'_>,
        _r: &u32,
        out: &mut usize,
        _node: at_rtree::NodeId,
        members: &[u64],
    ) {
        *out += members.len();
    }

    fn process_exact(&self, ctx: Ctx<'_>, _r: &u32) -> usize {
        ctx.dataset.len()
    }
}

impl ComposableService for PoisonCompose {
    type Response = usize;

    fn compose(&self, r: &u32, parts: &[usize]) -> usize {
        assert!(*r != POISON, "poison request reached the composer");
        parts.iter().sum::<usize>() + *r as usize
    }
}

fn quick_service<S>(make: impl Fn() -> S + Sync) -> FanOutService<S>
where
    S: ComposableService + Send + Sync,
    S::Request: Sync,
    S::Output: Send,
{
    let rows: Vec<SparseRow> = (0..90u32)
        .map(|r| SparseRow::from_pairs((0..6).map(|c| (c, ((r + c) % 4) as f64)).collect()))
        .collect();
    let subsets = partition_rows(6, rows, 3).expect("3 components");
    let cfg = SynopsisConfig {
        svd: at_linalg::svd::SvdConfig::default().with_epochs(8),
        size_ratio: 10,
        ..SynopsisConfig::default()
    };
    FanOutService::build(subsets, AggregationMode::Mean, cfg, make)
}

/// Decode a clock-free policy (outcome independent of wall-clock timing,
/// so sharded-vs-single-worker equivalence is exact).
fn clock_free_policy(code: u8) -> ExecutionPolicy {
    match code % 5 {
        0 => ExecutionPolicy::Exact,
        1 => ExecutionPolicy::SynopsisOnly,
        2 => ExecutionPolicy::budgeted(1),
        3 => ExecutionPolicy::budgeted(usize::MAX),
        _ => ExecutionPolicy::Budgeted {
            sets: 3,
            imax: Some(2),
        },
    }
}

/// Decode a zipf-ish duplicate-heavy request value: low codes collapse
/// onto a handful of hot keys, high codes spread over a cold tail.
fn zipf_request(code: u16) -> u32 {
    match code % 16 {
        0..=7 => 1,                 // hottest key: half the stream
        8..=11 => 2,                // second key: a quarter
        12 | 13 => 3,               // warm
        _ => 4 + (code % 5) as u32, // cold tail
    }
}

proptest! {
    // Each case spins up a real multi-worker cluster; keep counts low.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Routing a duplicate-heavy stream by hash affinity across any
    /// worker count — with stealing on or off — answers every request
    /// exactly as the single-worker batched path does.
    #[test]
    fn hash_affinity_is_byte_equivalent_to_single_worker(
        codes in prop::collection::vec((0u16..64, 0u8..5), 1..48),
        workers in 1usize..5,
        steal_code in 0u8..2,
        max_batch_code in 0usize..3,
    ) {
        let work_stealing = steal_code == 1;
        let max_batch = [1usize, 3, 16][max_batch_code];
        let service = quick_service(|| CountService);
        let single = quick_service(|| CountService);
        let cluster = ShardedServer::replicated(
            &service,
            ShardConfig::default()
                .with_workers(workers)
                .with_routing(RoutingStrategy::HashAffinity)
                .with_work_stealing(work_stealing)
                .with_worker(
                    ServerConfig::default()
                        .with_max_batch(max_batch)
                        .with_queue_capacity(64),
                ),
        );
        let submitted = Instant::now();
        let tickets: Vec<_> = codes
            .iter()
            .map(|&(code, pcode)| {
                let req = zipf_request(code);
                let policy = clock_free_policy(pcode);
                (req, policy, cluster.try_submit_at(req, policy, submitted).expect("room"))
            })
            .collect();
        for (req, policy, ticket) in tickets {
            let got = ticket.wait().expect("no panics, no shedding");
            let want = single.serve_at(&req, &policy, submitted);
            prop_assert_eq!(got.response, want.response, "req {} {:?}", req, policy);
            prop_assert_eq!(got.components, want.components, "req {} {:?}", req, policy);
            prop_assert_eq!(got.policy_applied, policy, "placement must not rewrite policies");
        }
        let stats = cluster.shutdown();
        prop_assert_eq!(stats.completed(), codes.len() as u64);
        prop_assert_eq!(stats.shed(), 0u64);
        // Stolen rounds are accounted symmetrically: every request the
        // thieves took is a request some victim gave up.
        let given: u64 = stats.workers.iter().map(|w| w.stolen).sum();
        prop_assert_eq!(stats.requests_stolen(), given);
    }

    /// Poison requests crash dispatchers (in the composer, after the
    /// fan-out succeeded) while supervisors restart them and idle workers
    /// steal from the victims' queues. Whatever interleaving results,
    /// every ticket resolves exactly once: an `Ok` carries its *own*
    /// request's answer, an `Err` is a cancelled batch — and the counters
    /// conserve.
    #[test]
    fn stealing_under_panic_storm_delivers_every_ticket_exactly_once(
        codes in prop::collection::vec(0u16..64, 4..48),
        poison_stride in 3usize..8,
        workers in 2usize..5,
    ) {
        let service = quick_service(|| PoisonCompose);
        let expect_rows = 90usize; // 3 components × 30 rows, all processed
        let cluster = ShardedServer::replicated(
            &service,
            ShardConfig::default()
                .with_workers(workers)
                .with_routing(RoutingStrategy::HashAffinity)
                .with_work_stealing(true)
                .with_worker(
                    ServerConfig::default()
                        .with_max_batch(3)
                        .with_queue_capacity(64)
                        .with_max_restarts(64),
                ),
        );
        // Stage the whole stream while paused so queues are deep and
        // uneven when dispatching starts — the state that provokes steals.
        cluster.pause();
        let submitted = Instant::now();
        let policy = ExecutionPolicy::Exact;
        let reqs: Vec<u32> = codes
            .iter()
            .enumerate()
            .map(|(i, &code)| {
                if i % poison_stride == 0 { POISON } else { zipf_request(code) }
            })
            .collect();
        let tickets: Vec<_> = reqs
            .iter()
            .map(|&req| {
                (req, cluster.try_submit_at(req, policy, submitted).expect("room"))
            })
            .collect();
        cluster.resume();

        let mut ok = 0u64;
        let mut cancelled = 0u64;
        for (req, ticket) in tickets {
            // Every ticket must resolve (the regression-tested supervisor
            // wakeups guarantee no submitter or waiter hangs).
            match ticket.wait() {
                Ok(resp) => {
                    prop_assert!(req != POISON, "poison batches always die");
                    prop_assert_eq!(
                        resp.response,
                        expect_rows + req as usize,
                        "a ticket must carry its own request's answer"
                    );
                    ok += 1;
                }
                Err(_) => cancelled += 1,
            }
        }
        prop_assert_eq!(ok + cancelled, reqs.len() as u64, "exactly-once: no ticket dropped");

        let stats = cluster.shutdown();
        // Completions counted by workers are exactly the fulfilled
        // tickets: a stolen request completes on the thief but is
        // attributed to its home — summing over workers double-counts
        // nothing and loses nothing.
        prop_assert_eq!(stats.completed(), ok);
        prop_assert_eq!(stats.submitted(), reqs.len() as u64);
        prop_assert_eq!(stats.shed(), 0u64);
        let given: u64 = stats.workers.iter().map(|w| w.stolen).sum();
        prop_assert_eq!(stats.requests_stolen(), given);
    }
}

//! Property-based tests for the control plane.
//!
//! * **`NoControl` is a no-op**: for any mix of requests and clock-free
//!   policies, a server with the default controller produces responses
//!   byte-equivalent to the synchronous `serve_at` path with the same
//!   submitted instants — admission control off means *no* behavior
//!   change.
//! * **Hysteresis never oscillates**: for any valid `LadderConfig` and
//!   any constant load signal, the `LadderController`'s level sequence is
//!   monotone until it reaches a fixed point and stays there.

use std::sync::Arc;
use std::time::{Duration, Instant};

use at_core::{
    partition_rows, ApproximateService, ComposableService, Correlation, Ctx, ExecutionPolicy,
    FanOutService,
};
use at_server::{
    AdmissionController, LadderConfig, LadderController, LoadSnapshot, Server, ServerConfig,
};
use at_synopsis::{AggregationMode, SparseRow, SynopsisConfig};
use proptest::prelude::*;

/// Toy composable service: counts original rows each component processed
/// (the shape used across at-core's and at-server's own tests).
struct CountService;

impl ApproximateService for CountService {
    type Request = u32;
    type Output = usize;

    fn process_synopsis(&self, ctx: Ctx<'_>, r: &u32, corr: &mut Vec<Correlation>) -> usize {
        corr.extend(ctx.store.synopsis().iter().map(|p| Correlation {
            node: p.node,
            score: p.member_count as f64 + (*r % 3) as f64,
        }));
        0
    }

    fn improve(
        &self,
        _ctx: Ctx<'_>,
        _r: &u32,
        out: &mut usize,
        _node: at_rtree::NodeId,
        members: &[u64],
    ) {
        *out += members.len();
    }

    fn process_exact(&self, ctx: Ctx<'_>, _r: &u32) -> usize {
        ctx.dataset.len()
    }
}

impl ComposableService for CountService {
    type Response = usize;

    fn compose(&self, r: &u32, parts: &[usize]) -> usize {
        parts.iter().sum::<usize>() + *r as usize
    }
}

fn quick_service() -> FanOutService<CountService> {
    let rows: Vec<SparseRow> = (0..90u32)
        .map(|r| SparseRow::from_pairs((0..6).map(|c| (c, ((r + c) % 4) as f64)).collect()))
        .collect();
    let subsets = partition_rows(6, rows, 3).expect("3 components");
    let cfg = SynopsisConfig {
        svd: at_linalg::svd::SvdConfig::default().with_epochs(8),
        size_ratio: 10,
        ..SynopsisConfig::default()
    };
    FanOutService::build(subsets, AggregationMode::Mean, cfg, || CountService)
}

/// Decode a clock-free policy (the variants whose outcome is independent
/// of wall-clock timing, so async-vs-sync equivalence is exact).
fn clock_free_policy(code: u8) -> ExecutionPolicy {
    match code % 5 {
        0 => ExecutionPolicy::Exact,
        1 => ExecutionPolicy::SynopsisOnly,
        2 => ExecutionPolicy::budgeted(1),
        3 => ExecutionPolicy::budgeted(usize::MAX),
        _ => ExecutionPolicy::Budgeted {
            sets: 3,
            imax: Some(2),
        },
    }
}

proptest! {
    // Each case spins up a real server; keep the count moderate.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Acceptance: with control off (the default `NoControl`), the
    /// dispatcher's responses are byte-equivalent to the pre-control
    /// behavior — i.e. to `serve_at` with the same submitted instants —
    /// for arbitrary request/policy mixes and micro-batch sizes.
    #[test]
    fn no_control_server_is_byte_equivalent_to_serve_at(
        reqs in prop::collection::vec((0u32..6, 0u8..5), 1..48),
        max_batch_code in 0usize..4,
    ) {
        let max_batch = [1usize, 3, 16, 64][max_batch_code];
        let service = Arc::new(quick_service());
        let server = Server::new(
            service.clone(),
            ServerConfig::default()
                .with_max_batch(max_batch)
                .with_stats_window(8),
        );
        let submitted = Instant::now();
        let tickets: Vec<_> = reqs
            .iter()
            .map(|&(req, code)| {
                let policy = clock_free_policy(code);
                (req, policy, server.try_submit_at(req, policy, submitted).expect("room"))
            })
            .collect();
        for (req, policy, ticket) in tickets {
            let got = ticket.wait().expect("NoControl never sheds");
            let want = service.serve_at(&req, &policy, submitted);
            prop_assert_eq!(got.response, want.response, "{:?}", policy);
            prop_assert_eq!(got.components, want.components, "{:?}", policy);
            prop_assert_eq!(got.policy_applied, policy,
                            "NoControl must not rewrite policies");
        }
        let stats = server.shutdown();
        prop_assert_eq!(stats.shed, 0, "NoControl never sheds");
        prop_assert_eq!(stats.completed, reqs.len() as u64);
    }

    /// Satellite: for any valid hysteresis config and any *constant* load
    /// signal, the controller's level sequence is monotone to a fixed
    /// point — it never oscillates (no A→B→A with A != B).
    #[test]
    fn ladder_hysteresis_never_oscillates_on_constant_load(
        enter_wait_frac in 0.1f64..1.0,
        band in 0.0f64..1.0,
        enter_depth in 0.1f64..1.0,
        depth_band in 0.0f64..1.0,
        wait_ms in 0u64..200,
        depth in 0usize..1000,
        max_level in 1u32..8,
    ) {
        let config = LadderConfig {
            wait_budget: Duration::from_millis(100),
            enter_wait_frac,
            exit_wait_frac: enter_wait_frac * band,
            enter_depth,
            exit_depth: enter_depth * depth_band,
            step_fraction: 0.5,
            shed_level: max_level + 1,
            max_level,
        };
        let controller = LadderController::new(config);
        let snapshot = LoadSnapshot {
            queue_depth: depth,
            queue_capacity: 1000,
            sampled: 64,
            mean_queue_wait: Duration::from_millis(wait_ms),
            p99_queue_wait: Duration::from_millis(wait_ms * 2),
            mean_coverage: 0.9,
            components_total: 3,
            components_open: 0,
        };
        let mut levels = Vec::with_capacity(64);
        for _ in 0..64 {
            controller.observe(&snapshot);
            levels.push(controller.level());
        }
        let increased = levels.windows(2).any(|w| w[1] > w[0]);
        let decreased = levels.windows(2).any(|w| w[1] < w[0]);
        prop_assert!(
            !(increased && decreased),
            "level oscillated on a constant signal: {:?}",
            levels
        );
        // And the tail is a fixed point: once stable, stable forever.
        let last = *levels.last().unwrap();
        prop_assert!(
            levels.iter().rev().take(8).all(|&l| l == last),
            "no fixed point reached: {:?}",
            levels
        );
    }
}

//! Property-based chaos: the serving stack under *arbitrary* seeded
//! fault schedules.
//!
//! * **Liveness**: for any schedule (any mix of errors, panics, stalls,
//!   and score corruption at any site on any component) and any request
//!   mix, every submitted ticket resolves exactly once — fulfilled or
//!   canceled, never hung — and the server shuts down cleanly. Faults
//!   may degrade answers; they may not wedge the pipeline.
//! * **Fault-free transparency**: a deployment wrapped in
//!   [`FaultyService`] with transparent injectors (any seeds, no rules)
//!   is byte-equivalent to the synchronous `serve_at` path on a bare
//!   deployment — the chaos harness itself costs nothing observable.

use std::sync::Arc;
use std::time::{Duration, Instant};

use at_core::{
    partition_rows, ApproximateService, Component, ComposableService, Correlation, Ctx,
    ExecutionPolicy, FanOutService, FaultInjector, FaultKind, FaultRule, FaultSite, FaultyService,
};
use at_server::{Server, ServerConfig};
use at_synopsis::{AggregationMode, RowStore, SparseRow, SynopsisConfig};
use proptest::prelude::*;

const COMPONENTS: usize = 3;

/// Toy composable service (the shape used across at-server's tests).
struct CountService;

impl ApproximateService for CountService {
    type Request = u32;
    type Output = usize;

    fn process_synopsis(&self, ctx: Ctx<'_>, r: &u32, corr: &mut Vec<Correlation>) -> usize {
        corr.extend(ctx.store.synopsis().iter().map(|p| Correlation {
            node: p.node,
            score: p.member_count as f64 + (*r % 3) as f64,
        }));
        0
    }

    fn improve(
        &self,
        _ctx: Ctx<'_>,
        _r: &u32,
        out: &mut usize,
        _node: at_rtree::NodeId,
        members: &[u64],
    ) {
        *out += members.len();
    }

    fn process_exact(&self, ctx: Ctx<'_>, _r: &u32) -> usize {
        ctx.dataset.len()
    }
}

impl ComposableService for CountService {
    type Response = usize;

    fn compose(&self, r: &u32, parts: &[usize]) -> usize {
        parts.iter().sum::<usize>() + *r as usize
    }
}

fn subsets() -> Vec<RowStore> {
    let rows: Vec<SparseRow> = (0..90u32)
        .map(|r| SparseRow::from_pairs((0..6).map(|c| (c, ((r + c) % 4) as f64)).collect()))
        .collect();
    partition_rows(6, rows, COMPONENTS).expect("3 components")
}

fn synopsis_config() -> SynopsisConfig {
    SynopsisConfig {
        svd: at_linalg::svd::SvdConfig::default().with_epochs(8),
        size_ratio: 10,
        ..SynopsisConfig::default()
    }
}

fn faulty_service(injectors: &[Arc<FaultInjector>]) -> FanOutService<FaultyService<CountService>> {
    let components = subsets()
        .into_iter()
        .zip(injectors)
        .map(|(subset, inj)| {
            Component::build(
                subset,
                AggregationMode::Mean,
                synopsis_config(),
                FaultyService::new(CountService, inj.clone()),
            )
            .0
        })
        .collect();
    FanOutService::from_components(components)
}

fn bare_service() -> FanOutService<CountService> {
    FanOutService::build(subsets(), AggregationMode::Mean, synopsis_config(), || {
        CountService
    })
}

fn clock_free_policy(code: u8) -> ExecutionPolicy {
    match code % 4 {
        0 => ExecutionPolicy::Exact,
        1 => ExecutionPolicy::SynopsisOnly,
        2 => ExecutionPolicy::budgeted(1),
        _ => ExecutionPolicy::budgeted(3),
    }
}

fn decode_site(code: u8) -> FaultSite {
    match code % 3 {
        0 => FaultSite::Stage1,
        1 => FaultSite::Stage2,
        _ => FaultSite::Compose,
    }
}

fn decode_kind(code: u8) -> FaultKind {
    match code % 4 {
        0 => FaultKind::Error,
        1 => FaultKind::Panic,
        2 => FaultKind::Stall(Duration::from_micros(50)),
        _ => FaultKind::CorruptScores,
    }
}

/// One component's schedule: up to two rules of arbitrary site/kind,
/// firing on arbitrary call ordinals.
fn schedule_strategy() -> impl Strategy<Value = Vec<(u8, u8, Vec<u64>)>> {
    prop::collection::vec(
        (0u8..3, 0u8..4, prop::collection::vec(0u64..48, 0..5)),
        0..3,
    )
}

proptest! {
    // Each case spins up a real server and real synopses; keep it small.
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Liveness under arbitrary fault schedules: every ticket resolves
    /// (fulfilled or canceled), failed-component sets are well-formed,
    /// and shutdown completes. Panics at the compose site crash the
    /// dispatcher on purpose — supervised restarts (or, for a hard crash
    /// loop, the terminal stop) must still resolve every ticket.
    #[test]
    fn every_ticket_resolves_under_any_fault_schedule(
        seed in 0u64..1_000_000,
        schedules in prop::collection::vec(schedule_strategy(), COMPONENTS..=COMPONENTS),
        reqs in prop::collection::vec((0u32..6, 0u8..4), 1..24),
        max_batch_code in 0usize..3,
    ) {
        let injectors: Vec<Arc<FaultInjector>> = schedules
            .iter()
            .enumerate()
            .map(|(i, rules)| {
                let mut inj = FaultInjector::new(seed.wrapping_add(i as u64));
                for &(site, kind, ref at) in rules {
                    inj = inj.with_rule(FaultRule::at_calls(
                        decode_site(site),
                        decode_kind(kind),
                        at.clone(),
                    ));
                }
                Arc::new(inj)
            })
            .collect();
        let service = Arc::new(faulty_service(&injectors));
        let server = Server::new(
            service,
            ServerConfig::default()
                .with_max_batch([1usize, 4, 16][max_batch_code])
                .with_restart_backoff(Duration::from_micros(100)),
        );
        server.pause();
        let tickets: Vec<_> = reqs
            .iter()
            .map(|&(req, code)| server.try_submit(req, clock_free_policy(code)).expect("room"))
            .collect();
        server.resume();
        let mut fulfilled = 0u64;
        for ticket in tickets {
            // The property under test: this never hangs.
            if let Ok(got) = ticket.wait() {
                fulfilled += 1;
                prop_assert!(got.components_failed.iter().all(|&c| c < COMPONENTS));
                prop_assert!(
                    got.components_failed.windows(2).all(|w| w[0] < w[1]),
                    "failed set must be sorted and duplicate-free: {:?}",
                    got.components_failed
                );
            }
        }
        let stats = server.shutdown();
        prop_assert_eq!(stats.completed, fulfilled, "completed == fulfilled tickets");
    }

    /// Fault-free transparency: transparent injectors (no rules, any
    /// seeds) leave the async path byte-equivalent to the synchronous
    /// `serve_at` path on a bare deployment.
    #[test]
    fn transparent_injectors_serve_byte_identically(
        seeds in prop::collection::vec(0u64..1_000_000, COMPONENTS..=COMPONENTS),
        reqs in prop::collection::vec((0u32..6, 0u8..4), 1..24),
    ) {
        let injectors: Vec<Arc<FaultInjector>> = seeds
            .iter()
            .map(|&s| Arc::new(FaultInjector::new(s)))
            .collect();
        let service = Arc::new(faulty_service(&injectors));
        let reference = bare_service();
        let server = Server::new(service, ServerConfig::default().with_max_batch(8));
        let submitted = Instant::now();
        let tickets: Vec<_> = reqs
            .iter()
            .map(|&(req, code)| {
                let policy = clock_free_policy(code);
                (req, policy, server.try_submit_at(req, policy, submitted).expect("room"))
            })
            .collect();
        for (req, policy, ticket) in tickets {
            let got = ticket.wait().expect("no faults, no cancellations");
            let want = reference.serve_at(&req, &policy, submitted);
            prop_assert_eq!(got.response, want.response, "{:?}", policy);
            prop_assert_eq!(got.components, want.components, "{:?}", policy);
            prop_assert!(got.components_failed.is_empty());
        }
        for inj in &injectors {
            prop_assert!(inj.is_transparent());
            prop_assert_eq!(inj.injected_total(), 0);
        }
        let stats = server.shutdown();
        prop_assert_eq!(stats.completed, reqs.len() as u64);
        prop_assert_eq!(stats.dispatcher_restarts, 0);
    }
}

//! Multi-worker sharded serving: N independent [`Server`] workers behind
//! one placement front end.
//!
//! The paper's deployment serves "millions of users" from many parallel
//! components; a single dispatcher thread driving a single
//! [`FanOutService`] caps throughput at one serving loop no matter how
//! many cores exist. [`ShardedServer`] scales the *serving loop* out:
//! each worker owns a full dispatcher stack — bounded queue, dispatcher
//! thread, output pool, sliding-window stats, admission controller, and
//! supervisor — and the front end only decides **placement**.
//!
//! ```text
//!                submissions (any thread)
//!                         │
//!                 route(req.route_key())
//!        ┌────────────────┼────────────────┐
//!        ▼                ▼                ▼
//!    worker 0          worker 1   …    worker N-1
//!   queue+dispatch    queue+dispatch   queue+dispatch
//!   stats+controller  stats+controller stats+controller
//!   supervisor        supervisor       supervisor
//!        └──────── work stealing (replicated only) ────────┘
//! ```
//!
//! ## Topologies
//!
//! * **Replicated** ([`ShardedServer::replicated`]): every worker serves
//!   a [`FanOutService::replica`] — same read-only subsets and synopses
//!   (`Arc`-shared, no copy), fresh breakers and output pool per worker.
//!   Any worker can serve any request, so the router may fail over away
//!   from a terminally stopped worker and idle dispatchers may steal
//!   from hot siblings.
//! * **Sharded** ([`ShardedServer::from_shards`]): each worker owns a
//!   *different* component shard (the big-synopsis case where the data
//!   cannot be replicated). A request's answer now depends on which
//!   worker serves it, so work stealing is structurally disabled and a
//!   stopped shard's requests report [`SubmitError::Stopped`] rather
//!   than silently answering from the wrong shard.
//!
//! ## Placement strategies
//!
//! * [`RoutingStrategy::HashAffinity`] (default): place by
//!   [`RouteKey::route_key`]. Equal requests land on the same worker, so
//!   the duplicate collapse inside the batched serving path keeps seeing
//!   its duplicates — on zipf-skewed traffic this cuts the *unique*
//!   requests per micro-batch by ~the worker count, which is where the
//!   multi-worker throughput win actually comes from (validated by
//!   `at-sim`'s shard model and the `shardpath` bench).
//! * [`RoutingStrategy::LeastLoaded`]: place on the shallowest live
//!   queue. Best for uniform traffic with no duplicate structure.
//! * [`RoutingStrategy::RoundRobin`]: strict rotation; the baseline.
//!
//! Hash affinity on a skewed mix leaves hot and cold workers; **work
//! stealing** (replicated topology, on by default) rebalances without
//! giving up collapse locality: an idle dispatcher steals the oldest
//! half of the deepest sibling queue, and since a stolen batch drains
//! from *one* home queue it still holds that home's (few) hot keys.
//! Stolen requests complete against the home worker's telemetry.
//!
//! ## Hot-shard isolation
//!
//! Every worker has its own admission controller (see
//! [`ShardedServer::replicated_with`]) and its own supervisor: a poison
//! storm on one worker climbs *that* worker's degradation ladder and
//! burns *that* worker's restart budget while its siblings' throughput,
//! ladder level, and restart budget stay untouched (chaos-tested in
//! `tests/end_to_end_chaos.rs`). Under a storm, disable work stealing —
//! an idle sibling stealing a poison batch imports the blast radius —
//! which is the isolation-versus-utilization trade
//! [`ShardConfig::with_work_stealing`] exists to make.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use at_core::{clock, ComposableService, ExecutionPolicy, FanOutService, RouteKey};

use crate::control::{AdmissionController, NoControl};
use crate::stats::{LoadSnapshot, ServerStats};
use crate::{Response, Server, ServerConfig, StealPlan, StealRing, SubmitError, Ticket};

/// How the front end places each submission on a worker.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RoutingStrategy {
    /// Place by the request's stable [`RouteKey`] hash: equal requests
    /// share a worker, preserving duplicate-collapse locality (the
    /// default, and the measured winner on zipf-skewed mixes).
    HashAffinity,
    /// Place on the live worker with the shallowest queue.
    LeastLoaded,
    /// Strict rotation across workers.
    RoundRobin,
}

/// Sizing and placement of a [`ShardedServer`].
#[derive(Clone, Copy, Debug)]
pub struct ShardConfig {
    /// Worker count for the replicated topology ([`from_shards`]
    /// (ShardedServer::from_shards) takes its count from the shard list
    /// instead).
    pub workers: usize,
    /// Placement strategy (default [`RoutingStrategy::HashAffinity`]).
    pub routing: RoutingStrategy,
    /// Let idle dispatchers steal from hot sibling queues (replicated
    /// topology only; forced off for sharded components, where a stolen
    /// request would be served against the wrong shard's data).
    pub work_stealing: bool,
    /// Per-worker queue/batch/window/supervision sizing.
    pub worker: ServerConfig,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            workers: 2,
            routing: RoutingStrategy::HashAffinity,
            work_stealing: true,
            worker: ServerConfig::default(),
        }
    }
}

impl ShardConfig {
    /// Override the worker count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Override the placement strategy.
    pub fn with_routing(mut self, routing: RoutingStrategy) -> Self {
        self.routing = routing;
        self
    }

    /// Enable or disable work stealing (see the module docs for the
    /// isolation-versus-utilization trade).
    pub fn with_work_stealing(mut self, work_stealing: bool) -> Self {
        self.work_stealing = work_stealing;
        self
    }

    /// Override the per-worker [`ServerConfig`].
    pub fn with_worker(mut self, worker: ServerConfig) -> Self {
        self.worker = worker;
        self
    }
}

/// N independent serving workers behind a placement front end — see the
/// [module docs](self) for topologies, strategies, and stealing.
///
/// Submission takes `&self` (any thread); [`shutdown`](Self::shutdown)
/// or `Drop` drains every worker.
pub struct ShardedServer<S>
where
    S: ComposableService,
{
    workers: Vec<Server<S>>,
    routing: RoutingStrategy,
    /// Replicated topology: any worker can serve any request, so the
    /// router may fail over from a stopped worker.
    replicated: bool,
    rr: AtomicUsize,
}

impl<S> ShardedServer<S>
where
    S: ComposableService + Send + Sync + 'static,
    S::Request: RouteKey + Clone + PartialEq + Send + Sync + 'static,
    S::Output: Send + 'static,
    S::Response: Send + 'static,
{
    /// Start `config.workers` workers, each serving a
    /// [`FanOutService::replica`] of `service` — same `Arc`-shared
    /// read-only subsets and synopses, fresh breakers and output pool per
    /// worker. Admission control defaults to [`NoControl`]; see
    /// [`replicated_with`](Self::replicated_with).
    ///
    /// # Panics
    /// Panics when `config.workers` is zero (a zero-worker cluster is a
    /// construction bug), or on a zero queue capacity / batch cap (see
    /// [`Server::new`]).
    pub fn replicated(service: &FanOutService<S>, config: ShardConfig) -> Self
    where
        S: Clone,
    {
        Self::replicated_with(service, config, |_| Box::new(NoControl))
    }

    /// [`replicated`](Self::replicated) with a per-worker admission
    /// controller factory: `controller_for(i)` builds worker `i`'s
    /// controller, so every worker climbs its own degradation ladder —
    /// the mechanism behind hot-shard isolation.
    ///
    /// # Panics
    /// Panics when `config.workers` is zero, or on a zero queue
    /// capacity / batch cap (see [`Server::new`]).
    pub fn replicated_with(
        service: &FanOutService<S>,
        config: ShardConfig,
        mut controller_for: impl FnMut(usize) -> Box<dyn AdmissionController>,
    ) -> Self
    where
        S: Clone,
    {
        assert!(config.workers > 0, "cluster needs >= 1 worker");
        let ring = if config.work_stealing && config.workers > 1 {
            Some(Arc::new(StealRing::new()))
        } else {
            None
        };
        let workers: Vec<Server<S>> = (0..config.workers)
            .map(|i| {
                let plan = ring.as_ref().map(|ring| StealPlan {
                    ring: Arc::clone(ring),
                    self_idx: i,
                });
                Server::spawn(
                    Arc::new(service.replica()),
                    config.worker,
                    controller_for(i),
                    plan,
                )
            })
            .collect();
        if let Some(ring) = ring {
            // Installed only now that every worker exists: dispatchers
            // spun up above see an empty ring (no stealing) until the
            // full queue list is in place.
            ring.install(workers.iter().map(Server::shared_handle).collect());
        }
        ShardedServer {
            workers,
            routing: config.routing,
            replicated: true,
            rr: AtomicUsize::new(0),
        }
    }

    /// Start one worker per pre-built component shard: worker `i` serves
    /// `shards[i]`, which holds a *different* slice of the data (the
    /// big-synopsis case). `config.workers` is ignored — the shard list
    /// is the worker count. Work stealing and stopped-worker failover
    /// are structurally disabled: a request served by the wrong worker
    /// would be answered from the wrong shard's data.
    ///
    /// The caller's partitioning must agree with the routing strategy —
    /// under [`RoutingStrategy::HashAffinity`], shard `i` should hold
    /// the data for keys with `route_key() % shards.len() == i`.
    ///
    /// # Panics
    /// Panics on an empty shard list, or on a zero queue capacity /
    /// batch cap (see [`Server::new`]).
    pub fn from_shards(shards: Vec<FanOutService<S>>, config: ShardConfig) -> Self {
        Self::from_shards_with(shards, config, |_| Box::new(NoControl))
    }

    /// [`from_shards`](Self::from_shards) with a per-worker admission
    /// controller factory (see
    /// [`replicated_with`](Self::replicated_with)).
    ///
    /// # Panics
    /// Panics on an empty shard list, or on a zero queue capacity /
    /// batch cap (see [`Server::new`]).
    pub fn from_shards_with(
        shards: Vec<FanOutService<S>>,
        config: ShardConfig,
        mut controller_for: impl FnMut(usize) -> Box<dyn AdmissionController>,
    ) -> Self {
        assert!(!shards.is_empty(), "cluster needs >= 1 shard");
        let workers: Vec<Server<S>> = shards
            .into_iter()
            .enumerate()
            .map(|(i, shard)| {
                Server::spawn(Arc::new(shard), config.worker, controller_for(i), None)
            })
            .collect();
        ShardedServer {
            workers,
            routing: config.routing,
            replicated: false,
            rr: AtomicUsize::new(0),
        }
    }

    /// The workers, in placement order (worker `i` is hash home for keys
    /// with `route_key() % len() == i`).
    pub fn workers(&self) -> &[Server<S>] {
        &self.workers
    }

    /// Borrow one worker by index.
    pub fn worker(&self, index: usize) -> Option<&Server<S>> {
        self.workers.get(index)
    }

    /// Worker count.
    pub fn len(&self) -> usize {
        self.workers.len()
    }

    /// Always false: construction requires at least one worker.
    pub fn is_empty(&self) -> bool {
        self.workers.is_empty()
    }

    /// The hash-affinity home worker index for `req` — which worker
    /// [`RoutingStrategy::HashAffinity`] places it on. Exposed so tests
    /// and benches can attribute per-worker telemetry to request keys.
    pub fn home_index(&self, req: &S::Request) -> usize {
        (req.route_key() % self.workers.len() as u64) as usize
    }

    /// Pick the placement for one submission under the configured
    /// strategy, failing over from a terminally stopped home worker to
    /// the shallowest live sibling (replicated topology only; sharded
    /// components report [`SubmitError::Stopped`] instead, because no
    /// other worker holds the right data). Best-effort: a worker that
    /// stops *between* placement and enqueue still bounces the caller
    /// with `Stopped`.
    fn place(&self, req: &S::Request) -> Result<&Server<S>, SubmitError> {
        let home = match self.routing {
            RoutingStrategy::HashAffinity => self.home_index(req),
            RoutingStrategy::RoundRobin => {
                // lint: allow(atomic-discipline) reason=placement cursor; any total RMW order round-robins correctly, no other state is published through it
                self.rr.fetch_add(1, Ordering::Relaxed) % self.workers.len()
            }
            RoutingStrategy::LeastLoaded => {
                let mut best = 0usize;
                let mut best_depth = usize::MAX;
                for (i, worker) in self.workers.iter().enumerate() {
                    if let Some(depth) = worker.live_depth() {
                        if depth < best_depth {
                            best = i;
                            best_depth = depth;
                        }
                    }
                }
                best
            }
        };
        let worker = self.workers.get(home).ok_or(SubmitError::Stopped)?;
        if !worker.is_stopped() {
            return Ok(worker);
        }
        if !self.replicated {
            return Err(SubmitError::Stopped);
        }
        let mut spill: Option<(&Server<S>, usize)> = None;
        for worker in &self.workers {
            if let Some(depth) = worker.live_depth() {
                if spill.is_none_or(|(_, best)| depth < best) {
                    spill = Some((worker, depth));
                }
            }
        }
        spill.map(|(worker, _)| worker).ok_or(SubmitError::Stopped)
    }

    /// Submit without blocking: place, stamp submitted *now*, enqueue on
    /// the placed worker. [`SubmitError::Busy`] reports that worker's
    /// queue full (other workers may have room — that is the placement
    /// strategy's call, not the caller's).
    pub fn try_submit(
        &self,
        req: S::Request,
        policy: ExecutionPolicy,
    ) -> Result<Ticket<Response<S>>, SubmitError> {
        self.try_submit_at(req, policy, clock::now())
    }

    /// [`try_submit`](Self::try_submit) with an explicit submission
    /// instant, for replaying recorded streams and deterministic
    /// deadline tests.
    pub fn try_submit_at(
        &self,
        req: S::Request,
        policy: ExecutionPolicy,
        submitted: Instant,
    ) -> Result<Ticket<Response<S>>, SubmitError> {
        self.place(&req)?.try_submit_at(req, policy, submitted)
    }

    /// Submit, blocking while the placed worker's queue is full. Errors
    /// only when that worker is shutting down or terminally stopped.
    pub fn submit(
        &self,
        req: S::Request,
        policy: ExecutionPolicy,
    ) -> Result<Ticket<Response<S>>, SubmitError> {
        self.place(&req)?.submit(req, policy)
    }

    /// Pause every worker's dispatching (see [`Server::pause`]).
    pub fn pause(&self) {
        for worker in &self.workers {
            worker.pause();
        }
    }

    /// Resume every worker's dispatching.
    pub fn resume(&self) {
        for worker in &self.workers {
            worker.resume();
        }
    }

    /// Requests waiting across all worker queues right now.
    pub fn queue_depth(&self) -> usize {
        self.workers.iter().map(Server::queue_depth).sum()
    }

    /// True once **every** worker is terminally stopped (the cluster can
    /// no longer serve anything; replicated clusters keep serving — with
    /// failover — while any worker lives).
    pub fn is_stopped(&self) -> bool {
        self.workers.iter().all(Server::is_stopped)
    }

    /// Per-worker telemetry snapshots plus cluster-level aggregation.
    pub fn stats(&self) -> ClusterStats {
        ClusterStats {
            workers: self.workers.iter().map(Server::stats).collect(),
        }
    }

    /// Shut down every worker: stop accepting, drain every queue,
    /// join every dispatcher, and return the final telemetry.
    pub fn shutdown(self) -> ClusterStats {
        ClusterStats {
            workers: self.workers.into_iter().map(Server::shutdown).collect(),
        }
    }
}

/// A telemetry snapshot of a whole [`ShardedServer`]: every worker's
/// [`ServerStats`] in worker order, plus cluster-level sums and an
/// aggregated [`LoadSnapshot`].
#[derive(Clone, Debug, PartialEq)]
pub struct ClusterStats {
    /// Per-worker snapshots, in worker order.
    pub workers: Vec<ServerStats>,
}

impl ClusterStats {
    /// Requests accepted across all workers.
    pub fn submitted(&self) -> u64 {
        self.workers.iter().map(|w| w.submitted).sum()
    }

    /// Requests completed across all workers.
    pub fn completed(&self) -> u64 {
        self.workers.iter().map(|w| w.completed).sum()
    }

    /// Requests shed by admission control across all workers.
    pub fn shed(&self) -> u64 {
        self.workers.iter().map(|w| w.shed).sum()
    }

    /// Submissions bounced with `Busy` across all workers.
    pub fn rejected(&self) -> u64 {
        self.workers.iter().map(|w| w.rejected).sum()
    }

    /// Accepted requests not yet completed or shed, cluster-wide.
    pub fn in_flight(&self) -> u64 {
        self.workers.iter().map(|w| w.in_flight).sum()
    }

    /// Micro-batches dispatched across all workers.
    pub fn batches_dispatched(&self) -> u64 {
        self.workers.iter().map(|w| w.batches_dispatched).sum()
    }

    /// Dispatcher respawns across all workers.
    pub fn dispatcher_restarts(&self) -> u64 {
        self.workers.iter().map(|w| w.dispatcher_restarts).sum()
    }

    /// Requests that moved between workers via work stealing (each
    /// stolen request counts once; per-worker `steals`/`stolen` split
    /// the thief/victim sides).
    pub fn requests_stolen(&self) -> u64 {
        self.workers.iter().map(|w| w.steals).sum()
    }

    /// Workers in the terminal stopped state.
    pub fn workers_stopped(&self) -> usize {
        self.workers.iter().filter(|w| w.stopped).count()
    }

    /// A cluster-level [`LoadSnapshot`]: depths, capacities, samples,
    /// and component counts sum across workers; mean wait and coverage
    /// are sample-weighted; the cluster "p99" is the worst worker's p99
    /// (conservative — a cluster is as slow as its hottest shard).
    pub fn load(&self) -> LoadSnapshot {
        let mut agg = LoadSnapshot {
            queue_depth: 0,
            queue_capacity: 0,
            sampled: 0,
            mean_queue_wait: std::time::Duration::ZERO,
            p99_queue_wait: std::time::Duration::ZERO,
            mean_coverage: 1.0,
            components_total: 0,
            components_open: 0,
        };
        let mut wait_weighted_ns: u128 = 0;
        let mut coverage_weighted: f64 = 0.0;
        for w in &self.workers {
            agg.queue_depth += w.load.queue_depth;
            agg.queue_capacity += w.load.queue_capacity;
            agg.sampled += w.load.sampled;
            agg.p99_queue_wait = agg.p99_queue_wait.max(w.load.p99_queue_wait);
            agg.components_total += w.load.components_total;
            agg.components_open += w.load.components_open;
            wait_weighted_ns += w.load.mean_queue_wait.as_nanos() * w.load.sampled as u128;
            coverage_weighted += w.load.mean_coverage * w.load.sampled as f64;
        }
        if agg.sampled > 0 {
            let mean_ns = wait_weighted_ns / agg.sampled as u128;
            agg.mean_queue_wait =
                std::time::Duration::from_nanos(u64::try_from(mean_ns).unwrap_or(u64::MAX));
            agg.mean_coverage = coverage_weighted / agg.sampled as f64;
        }
        agg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn worker_stats(
        submitted: u64,
        completed: u64,
        sampled: usize,
        mean_wait: Duration,
        p99: Duration,
        coverage: f64,
        stopped: bool,
    ) -> ServerStats {
        ServerStats {
            submitted,
            rejected: 1,
            completed,
            shed: 2,
            in_flight: submitted.saturating_sub(completed).saturating_sub(2),
            queue_depth: 3,
            max_queue_depth: 8,
            batches_dispatched: 4,
            dispatcher_restarts: 1,
            steals: 5,
            stolen: 6,
            stopped,
            queue_wait_total: Duration::from_millis(10),
            queue_wait_max: p99,
            load: LoadSnapshot {
                queue_depth: 3,
                queue_capacity: 16,
                sampled,
                mean_queue_wait: mean_wait,
                p99_queue_wait: p99,
                mean_coverage: coverage,
                components_total: 3,
                components_open: 1,
            },
        }
    }

    #[test]
    fn cluster_stats_aggregate_across_workers() {
        let stats = ClusterStats {
            workers: vec![
                worker_stats(
                    100,
                    90,
                    10,
                    Duration::from_millis(2),
                    Duration::from_millis(9),
                    0.5,
                    false,
                ),
                worker_stats(
                    50,
                    40,
                    30,
                    Duration::from_millis(6),
                    Duration::from_millis(40),
                    1.0,
                    true,
                ),
            ],
        };
        assert_eq!(stats.submitted(), 150);
        assert_eq!(stats.completed(), 130);
        assert_eq!(stats.shed(), 4);
        assert_eq!(stats.rejected(), 2);
        assert_eq!(stats.in_flight(), 16);
        assert_eq!(stats.batches_dispatched(), 8);
        assert_eq!(stats.dispatcher_restarts(), 2);
        assert_eq!(stats.requests_stolen(), 10);
        assert_eq!(stats.workers_stopped(), 1);
        let load = stats.load();
        assert_eq!(load.queue_depth, 6);
        assert_eq!(load.queue_capacity, 32);
        assert_eq!(load.sampled, 40);
        // Sample-weighted mean: (2ms·10 + 6ms·30) / 40 = 5ms.
        assert_eq!(load.mean_queue_wait, Duration::from_millis(5));
        // Cluster p99 is the worst worker's p99.
        assert_eq!(load.p99_queue_wait, Duration::from_millis(40));
        // Sample-weighted coverage: (0.5·10 + 1.0·30) / 40 = 0.875.
        assert!((load.mean_coverage - 0.875).abs() < 1e-12);
        assert_eq!(load.components_total, 6);
        assert_eq!(load.components_open, 2);
    }

    #[test]
    fn empty_window_cluster_load_keeps_typed_zeros() {
        let stats = ClusterStats {
            workers: vec![worker_stats(
                0,
                0,
                0,
                Duration::ZERO,
                Duration::ZERO,
                1.0,
                false,
            )],
        };
        let load = stats.load();
        assert_eq!(load.sampled, 0);
        assert_eq!(load.mean_queue_wait, Duration::ZERO);
        assert_eq!(load.mean_coverage, 1.0, "cold cluster: no degradation");
    }
}

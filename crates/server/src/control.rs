//! The admission-control plane: per-request degradation decisions from
//! sliding-window load telemetry.
//!
//! The paper's tail-latency story at peak diurnal load is a *control*
//! story: when queue wait approaches the service deadline `l_spe`, keep
//! answering every request but spend less on each — trade a little
//! accuracy for bounded timeliness. This module makes that a pluggable
//! policy of the dispatcher:
//!
//! ```text
//!              drain micro-batch
//!                     │
//!                     ▼
//!     LoadSnapshot (recent waits, depth, coverage)
//!                     │
//!          controller.observe(&snapshot)        ── once per round
//!                     │
//!        per request, newest first:
//!          controller.decide(&snapshot, &requested)
//!            ├── Admit              → serve under the requested policy
//!            ├── Degrade(policy)    → serve under the cheaper rung
//!            └── Shed               → drop; ticket reports Canceled
//!                     │
//!                     ▼
//!       group by *effective* policy → serve_batch_at per group
//! ```
//!
//! Degraded requests need no batch splitting: the dispatcher already
//! groups mixed-policy micro-batches, so a degraded fraction of traffic
//! simply forms its own (cheap, collapsible) group. The response's
//! [`policy_applied`](at_core::ServiceResponse::policy_applied) records
//! what actually ran, so callers can see the degradation.

use std::sync::Mutex;
use std::time::Duration;

use at_core::ExecutionPolicy;

use crate::stats::LoadSnapshot;

/// What to do with one request about to be served.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Decision {
    /// Serve under the requested policy.
    Admit,
    /// Serve under this cheaper policy instead (a rung of the request's
    /// [`DegradationLadder`](at_core::DegradationLadder)).
    Degrade(ExecutionPolicy),
    /// Do not serve at all: the ticket reports
    /// [`Canceled`](crate::Canceled) and the shed counter increments.
    Shed,
}

/// A per-request admission/degradation policy consulted by the
/// dispatcher before policy-grouping each micro-batch.
///
/// [`observe`](AdmissionController::observe) is called once per dispatch
/// round with a fresh [`LoadSnapshot`] (hysteresis state belongs there);
/// [`decide`](AdmissionController::decide) is then called once per
/// request of the round, **newest submission first**, so a controller
/// that degrades "the first fraction of this round's calls" degrades the
/// newest traffic first — requests that joined the backlog last have the
/// longest expected wait ahead of them and lose the least invested work.
pub trait AdmissionController: Send + Sync {
    /// One fresh snapshot per dispatch round, before any `decide` calls.
    fn observe(&self, _snapshot: &LoadSnapshot) {}

    /// The decision for one request requesting `requested`.
    fn decide(&self, snapshot: &LoadSnapshot, requested: &ExecutionPolicy) -> Decision;

    /// True when this controller admits unconditionally ([`NoControl`]):
    /// the dispatcher then skips snapshot aggregation and per-request
    /// consultation entirely, keeping the uncontrolled hot path
    /// byte-identical to a server without a control plane.
    fn is_pass_through(&self) -> bool {
        false
    }
}

/// Boxed controllers forward transparently, so a multi-worker front end
/// can hand each worker its own independently-tuned controller from one
/// `Fn(usize) -> Box<dyn AdmissionController>` factory (per-worker
/// ladders are what make hot-shard isolation possible — see
/// [`ShardedServer`](crate::ShardedServer)).
impl AdmissionController for Box<dyn AdmissionController> {
    fn observe(&self, snapshot: &LoadSnapshot) {
        (**self).observe(snapshot);
    }

    fn decide(&self, snapshot: &LoadSnapshot, requested: &ExecutionPolicy) -> Decision {
        (**self).decide(snapshot, requested)
    }

    fn is_pass_through(&self) -> bool {
        (**self).is_pass_through()
    }
}

/// The default controller: admit everything, exactly the dispatcher's
/// behavior before admission control existed (proptest-proven equivalent
/// in `tests/proptest_control.rs`).
#[derive(Clone, Copy, Debug, Default)]
pub struct NoControl;

impl AdmissionController for NoControl {
    fn decide(&self, _snapshot: &LoadSnapshot, _requested: &ExecutionPolicy) -> Decision {
        Decision::Admit
    }

    fn is_pass_through(&self) -> bool {
        true
    }
}

/// Tuning of a [`LadderController`]: enter/exit thresholds (hysteresis)
/// and how aggressively each overload level degrades.
#[derive(Clone, Copy, Debug)]
pub struct LadderConfig {
    /// The queue-wait budget to protect — the `l_spe` the deployment
    /// promises (the paper's 100 ms). Overload is measured against it.
    pub wait_budget: Duration,
    /// Climb one level when windowed mean queue wait exceeds this
    /// fraction of `wait_budget`…
    pub enter_wait_frac: f64,
    /// …and descend one only once it falls below this (smaller) fraction:
    /// the gap between the two is the hysteresis band that prevents
    /// flapping.
    pub exit_wait_frac: f64,
    /// Climb one level when queue depth exceeds this fraction of
    /// capacity…
    pub enter_depth: f64,
    /// …and descend only once below this (smaller) fraction.
    pub exit_depth: f64,
    /// Fraction of each round's traffic degraded per level (level ℓ
    /// degrades `min(1, ℓ · step_fraction)` of the round, newest first).
    pub step_fraction: f64,
    /// At or above this level, part of the acted fraction is shed
    /// outright — the ladder floor was not enough. The shed share grows
    /// by `step_fraction` per level past this threshold, so saturation
    /// degrades gracefully instead of dropping whole rounds.
    pub shed_level: u32,
    /// Hard cap on the level.
    pub max_level: u32,
}

impl Default for LadderConfig {
    fn default() -> Self {
        LadderConfig {
            wait_budget: Duration::from_millis(100),
            enter_wait_frac: 0.5,
            exit_wait_frac: 0.25,
            enter_depth: 0.75,
            exit_depth: 0.40,
            step_fraction: 0.5,
            shed_level: 4,
            max_level: 5,
        }
    }
}

impl LadderConfig {
    /// `Default` with the deployment's own `l_spe` as the wait budget.
    pub fn for_deadline(l_spe: Duration) -> Self {
        LadderConfig {
            wait_budget: l_spe,
            ..LadderConfig::default()
        }
    }

    fn validate(&self) {
        assert!(
            self.wait_budget > Duration::ZERO,
            "wait_budget must be positive"
        );
        assert!(
            self.enter_wait_frac >= self.exit_wait_frac && self.exit_wait_frac >= 0.0,
            "wait hysteresis band must satisfy enter >= exit >= 0"
        );
        assert!(
            self.enter_depth >= self.exit_depth && self.exit_depth >= 0.0,
            "depth hysteresis band must satisfy enter >= exit >= 0"
        );
        assert!(
            self.step_fraction > 0.0 && self.step_fraction <= 1.0,
            "step_fraction must be in (0, 1]"
        );
        assert!(self.max_level >= 1, "max_level must be >= 1");
    }
}

/// Per-round mutable state of a [`LadderController`].
#[derive(Debug, Default)]
struct LadderState {
    /// Current overload level (0 = healthy, admit everything).
    level: u32,
    /// `decide` calls seen this round.
    seen: u64,
    /// Degrade/shed decisions issued this round.
    acted: u64,
    /// Shed decisions issued this round (a subset of `acted`).
    shed: u64,
}

/// The load-adaptive controller: a hysteresis loop over the
/// [`LoadSnapshot`] driving requests down their
/// [`DegradationLadder`](at_core::DegradationLadder).
///
/// Each dispatch round, [`observe`](AdmissionController::observe) moves
/// the overload level at most one step: **up** when the windowed mean
/// queue wait exceeds `enter_wait_frac · wait_budget` *or* the queue is
/// more than `enter_depth` full; **down** when the wait is below
/// `exit_wait_frac · wait_budget` *and* the depth below `exit_depth`;
/// held otherwise (the hysteresis band). Because enter and exit bands
/// cannot overlap (validated at construction), a constant load signal
/// moves the level monotonically to a fixed point — it never oscillates.
///
/// At level ℓ, [`decide`](AdmissionController::decide) acts on the first
/// `min(1, ℓ · step_fraction)` fraction of the round's calls — the newest
/// requests, per the dispatcher's newest-first consultation order —
/// degrading each by ℓ rungs of its ladder (clamped to the `SynopsisOnly`
/// floor). At `shed_level` and above, the newest
/// `(ℓ − shed_level + 1) · step_fraction` of the round is shed instead
/// (even floor-priced work would blow the backlog) while the rest of the
/// acted traffic still gets floor-priced service.
#[derive(Debug)]
pub struct LadderController {
    config: LadderConfig,
    state: Mutex<LadderState>,
}

impl LadderController {
    /// A controller with the given tuning.
    ///
    /// # Panics
    /// Panics when the hysteresis bands overlap (`enter < exit`), the
    /// wait budget is zero, or `step_fraction` is outside `(0, 1]`.
    pub fn new(config: LadderConfig) -> Self {
        config.validate();
        LadderController {
            config,
            state: Mutex::new(LadderState::default()),
        }
    }

    /// The controller's tuning.
    pub fn config(&self) -> &LadderConfig {
        &self.config
    }

    /// The current overload level (0 = healthy).
    pub fn level(&self) -> u32 {
        self.state().level
    }

    fn state(&self) -> std::sync::MutexGuard<'_, LadderState> {
        // Plain scalars; take over a poisoned lock.
        self.state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl AdmissionController for LadderController {
    fn observe(&self, snapshot: &LoadSnapshot) {
        let budget = self.config.wait_budget.as_secs_f64();
        let depth = snapshot.depth_ratio();
        // Asymmetric signals: *enter* on the windowed mean (react to
        // pressure as soon as the average request feels it), *exit* on
        // the windowed p99 (stand down only once nearly the whole recent
        // window is calm) — dispatch rounds can be far faster than the
        // window refreshes, and exiting on a still-hot tail lets
        // full-price work back in just long enough to re-explode the
        // queue.
        let mean_wait = snapshot.mean_queue_wait.as_secs_f64();
        let tail_wait = snapshot.p99_queue_wait.as_secs_f64();
        let enter =
            mean_wait > self.config.enter_wait_frac * budget || depth > self.config.enter_depth;
        let exit =
            tail_wait < self.config.exit_wait_frac * budget && depth < self.config.exit_depth;
        let mut state = self.state();
        if enter {
            state.level = (state.level + 1).min(self.config.max_level);
        } else if exit {
            state.level = state.level.saturating_sub(1);
        }
        state.seen = 0;
        state.acted = 0;
        state.shed = 0;
    }

    fn decide(&self, _snapshot: &LoadSnapshot, requested: &ExecutionPolicy) -> Decision {
        let mut state = self.state();
        if state.level == 0 {
            return Decision::Admit;
        }
        state.seen += 1;
        let fraction = (f64::from(state.level) * self.config.step_fraction).min(1.0);
        // ceil targets act on the *earliest* calls of the round — the
        // newest requests, per the dispatcher's consultation order.
        let target = (fraction * state.seen as f64).ceil() as u64;
        if state.acted >= target {
            return Decision::Admit;
        }
        state.acted += 1;
        // At shed_level and above, only the *excess* fraction is shed —
        // one step_fraction more per level past the threshold — and the
        // rest of the acted traffic still gets floor-priced service, so
        // saturation degrades gracefully instead of dropping whole rounds.
        if state.level >= self.config.shed_level {
            let excess = f64::from(state.level - self.config.shed_level + 1);
            let shed_fraction = (excess * self.config.step_fraction).min(fraction);
            let shed_target = (shed_fraction * state.seen as f64).ceil() as u64;
            if state.shed < shed_target {
                state.shed += 1;
                return Decision::Shed;
            }
        }
        // The request's rung `level` steps down its ladder — equal to
        // `DegradationLadder::from_policy(*requested).rung(level)`, but
        // allocation-free: `degrade_one_step` is a fixed point at the
        // floor, so walking it needs no clamp and no materialized rungs
        // (this runs per degraded request in exactly the overload regime
        // the controller exists to relieve).
        let rung = (0..state.level).fold(*requested, |p, _| p.degrade_one_step());
        if rung == *requested {
            // Already at (or below) the level's rung: nothing to degrade.
            return Decision::Admit;
        }
        Decision::Degrade(rung)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot(mean_wait: Duration, depth: usize, capacity: usize) -> LoadSnapshot {
        LoadSnapshot {
            queue_depth: depth,
            queue_capacity: capacity,
            sampled: 64,
            mean_queue_wait: mean_wait,
            p99_queue_wait: mean_wait * 2,
            mean_coverage: 0.8,
            components_total: 3,
            components_open: 0,
        }
    }

    fn config() -> LadderConfig {
        LadderConfig::for_deadline(Duration::from_millis(100))
    }

    #[test]
    fn no_control_always_admits() {
        let snap = snapshot(Duration::from_secs(10), 100, 100);
        assert_eq!(
            NoControl.decide(&snap, &ExecutionPolicy::recommender()),
            Decision::Admit
        );
    }

    #[test]
    fn healthy_load_admits_everything() {
        let c = LadderController::new(config());
        let snap = snapshot(Duration::from_millis(1), 0, 1000);
        c.observe(&snap);
        assert_eq!(c.level(), 0);
        for _ in 0..100 {
            assert_eq!(
                c.decide(&snap, &ExecutionPolicy::recommender()),
                Decision::Admit
            );
        }
    }

    #[test]
    fn overload_climbs_one_level_per_round_and_degrades_the_newest_fraction() {
        let c = LadderController::new(config());
        let hot = snapshot(Duration::from_millis(80), 10, 1000); // 80ms > 50ms enter
        c.observe(&hot);
        assert_eq!(c.level(), 1);
        // step_fraction 0.5 at level 1: half the round degraded, earliest
        // (= newest) calls first.
        let requested = ExecutionPolicy::recommender();
        let decisions: Vec<Decision> = (0..4).map(|_| c.decide(&hot, &requested)).collect();
        let degraded = ExecutionPolicy::Budgeted {
            sets: ExecutionPolicy::DEGRADED_SETS,
            imax: None,
        };
        assert_eq!(
            decisions,
            vec![
                Decision::Degrade(degraded), // newest: degraded first
                Decision::Admit,
                Decision::Degrade(degraded),
                Decision::Admit,
            ]
        );
        // Next round still hot: level 2 → full fraction, two rungs down.
        c.observe(&hot);
        assert_eq!(c.level(), 2);
        assert_eq!(
            c.decide(&hot, &requested),
            Decision::Degrade(ExecutionPolicy::SynopsisOnly)
        );
    }

    #[test]
    fn depth_alone_can_trip_the_controller() {
        let c = LadderController::new(config());
        let deep = snapshot(Duration::ZERO, 800, 1000); // 0.8 > 0.75 enter
        c.observe(&deep);
        assert_eq!(c.level(), 1);
    }

    #[test]
    fn hysteresis_band_holds_the_level() {
        let c = LadderController::new(config());
        let hot = snapshot(Duration::from_millis(80), 0, 1000);
        c.observe(&hot);
        assert_eq!(c.level(), 1);
        // 30ms is between exit (25ms) and enter (50ms): hold, don't flap.
        let between = snapshot(Duration::from_millis(30), 0, 1000);
        for _ in 0..10 {
            c.observe(&between);
            assert_eq!(c.level(), 1, "level must hold inside the band");
        }
        // Below exit on both signals: descend one per round.
        let calm = snapshot(Duration::from_millis(1), 0, 1000);
        c.observe(&calm);
        assert_eq!(c.level(), 0);
    }

    #[test]
    fn shed_level_sheds_the_acted_fraction() {
        let mut cfg = config();
        cfg.shed_level = 1;
        let c = LadderController::new(cfg);
        let hot = snapshot(Duration::from_secs(1), 1000, 1000);
        c.observe(&hot);
        assert_eq!(c.level(), 1);
        assert_eq!(
            c.decide(&hot, &ExecutionPolicy::recommender()),
            Decision::Shed
        );
        assert_eq!(
            c.decide(&hot, &ExecutionPolicy::recommender()),
            Decision::Admit,
            "only the level's fraction is shed"
        );
    }

    #[test]
    fn floor_requests_are_admitted_not_re_degraded() {
        let c = LadderController::new(config());
        let hot = snapshot(Duration::from_secs(1), 0, 1000);
        c.observe(&hot);
        assert_eq!(
            c.decide(&hot, &ExecutionPolicy::SynopsisOnly),
            Decision::Admit,
            "nothing below the floor to degrade to"
        );
    }

    #[test]
    fn level_caps_at_max_level() {
        let c = LadderController::new(config());
        let hot = snapshot(Duration::from_secs(1), 1000, 1000);
        for _ in 0..20 {
            c.observe(&hot);
        }
        assert_eq!(c.level(), config().max_level);
    }

    #[test]
    #[should_panic(expected = "hysteresis")]
    fn overlapping_bands_are_a_construction_bug() {
        LadderController::new(LadderConfig {
            enter_wait_frac: 0.2,
            exit_wait_frac: 0.5,
            ..config()
        });
    }
}

//! Queue-depth and wait-time telemetry — the feedback signals an
//! admission/degradation controller consumes (ROADMAP: switch `Deadline` →
//! `SynopsisOnly` when queue wait approaches `l_spe`).
//!
//! Counters are lock-free atomics updated by the accept side and the
//! dispatcher; [`ServerStats`] is a consistent-enough snapshot for
//! monitoring (individual counters are exact, cross-counter derived values
//! can lag one another by an in-flight request).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Live counters shared between the accept side and the dispatcher.
#[derive(Debug, Default)]
pub(crate) struct Counters {
    pub(crate) submitted: AtomicU64,
    pub(crate) rejected: AtomicU64,
    pub(crate) completed: AtomicU64,
    pub(crate) batches: AtomicU64,
    pub(crate) queue_wait_ns: AtomicU64,
    pub(crate) max_queue_wait_ns: AtomicU64,
    pub(crate) max_queue_depth: AtomicU64,
}

impl Counters {
    /// Record one request leaving the queue after `wait` in it.
    pub(crate) fn record_dequeue(&self, wait: Duration) {
        let ns = u64::try_from(wait.as_nanos()).unwrap_or(u64::MAX);
        self.queue_wait_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_queue_wait_ns.fetch_max(ns, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self, queue_depth: usize) -> ServerStats {
        let submitted = self.submitted.load(Ordering::Relaxed);
        let completed = self.completed.load(Ordering::Relaxed);
        ServerStats {
            submitted,
            rejected: self.rejected.load(Ordering::Relaxed),
            completed,
            in_flight: submitted.saturating_sub(completed),
            queue_depth,
            max_queue_depth: self.max_queue_depth.load(Ordering::Relaxed),
            batches_dispatched: self.batches.load(Ordering::Relaxed),
            queue_wait_total: Duration::from_nanos(self.queue_wait_ns.load(Ordering::Relaxed)),
            queue_wait_max: Duration::from_nanos(self.max_queue_wait_ns.load(Ordering::Relaxed)),
        }
    }
}

/// A telemetry snapshot of one [`Server`](crate::Server).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServerStats {
    /// Requests accepted into the queue (including those already served).
    pub submitted: u64,
    /// `try_submit` calls bounced with [`SubmitError::Busy`](crate::SubmitError::Busy).
    pub rejected: u64,
    /// Requests whose ticket has been fulfilled.
    pub completed: u64,
    /// Accepted requests not yet completed (queued or being served).
    pub in_flight: u64,
    /// Requests waiting in the queue right now.
    pub queue_depth: usize,
    /// High-water mark of `queue_depth`.
    pub max_queue_depth: u64,
    /// Micro-batches the dispatcher has driven through the service.
    pub batches_dispatched: u64,
    /// Total time completed-or-dispatched requests spent queued.
    pub queue_wait_total: Duration,
    /// Longest single queue wait observed.
    pub queue_wait_max: Duration,
}

impl ServerStats {
    /// Mean micro-batch size (requests per dispatch), 0.0 when idle.
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches_dispatched == 0 {
            return 0.0;
        }
        self.completed as f64 / self.batches_dispatched as f64
    }

    /// Mean time a dispatched request spent queued, zero when idle.
    pub fn mean_queue_wait(&self) -> Duration {
        if self.completed == 0 {
            return Duration::ZERO;
        }
        self.queue_wait_total / u32::try_from(self.completed).unwrap_or(u32::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_derives_in_flight_and_means() {
        let c = Counters::default();
        c.submitted.store(10, Ordering::Relaxed);
        c.completed.store(6, Ordering::Relaxed);
        c.batches.store(3, Ordering::Relaxed);
        c.record_dequeue(Duration::from_millis(9));
        c.record_dequeue(Duration::from_millis(3));
        let s = c.snapshot(4);
        assert_eq!(s.in_flight, 4);
        assert_eq!(s.queue_depth, 4);
        assert_eq!(s.mean_batch_size(), 2.0);
        assert_eq!(s.queue_wait_total, Duration::from_millis(12));
        assert_eq!(s.queue_wait_max, Duration::from_millis(9));
        assert_eq!(s.mean_queue_wait(), Duration::from_millis(2));
    }

    #[test]
    fn idle_stats_have_zero_means() {
        let s = Counters::default().snapshot(0);
        assert_eq!(s.mean_batch_size(), 0.0);
        assert_eq!(s.mean_queue_wait(), Duration::ZERO);
        assert_eq!(s.in_flight, 0);
    }
}

//! Queue-depth and wait-time telemetry — the feedback signals the
//! admission/degradation controller consumes (see [`crate::control`]).
//!
//! Two kinds of signal live here:
//!
//! * **Cumulative counters** (lock-free atomics updated by the accept side
//!   and the dispatcher): lifetime totals for monitoring — submitted,
//!   rejected, completed, shed, batches, high-water marks.
//! * **A sliding window** over the most recent dispatches: per-request
//!   queue waits and response coverage, aggregated into a
//!   [`LoadSnapshot`] (recent depth/capacity ratio, recent mean/p99 queue
//!   wait, recent mean coverage). Control decisions read the snapshot, so
//!   they track *current* load — a cumulative mean over a long-lived
//!   server's whole history would still remember a burst hours after it
//!   subsided.
//!
//! [`ServerStats`] is a consistent-enough snapshot of both for monitoring
//! (individual counters are exact, cross-counter derived values can lag
//! one another by an in-flight request).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// The sliding window's raw samples: the most recent `cap` dispatched
/// requests' queue waits (ns) and served requests' mean coverages.
#[derive(Debug)]
struct Window {
    waits_ns: VecDeque<u64>,
    coverages: VecDeque<f64>,
    cap: usize,
}

impl Window {
    fn new(cap: usize) -> Self {
        Window {
            waits_ns: VecDeque::with_capacity(cap),
            coverages: VecDeque::with_capacity(cap),
            cap,
        }
    }

    fn push_wait(&mut self, ns: u64) {
        if self.waits_ns.len() == self.cap {
            self.waits_ns.pop_front();
        }
        self.waits_ns.push_back(ns);
    }

    fn push_coverage(&mut self, coverage: f64) {
        if self.coverages.len() == self.cap {
            self.coverages.pop_front();
        }
        self.coverages.push_back(coverage);
    }
}

/// Live counters shared between the accept side and the dispatcher.
#[derive(Debug)]
pub(crate) struct Counters {
    pub(crate) submitted: AtomicU64,
    pub(crate) rejected: AtomicU64,
    pub(crate) completed: AtomicU64,
    pub(crate) shed: AtomicU64,
    pub(crate) batches: AtomicU64,
    pub(crate) dispatcher_restarts: AtomicU64,
    /// Requests this worker's dispatcher pulled out of a *sibling*
    /// worker's queue (work stealing; multi-worker deployments only).
    pub(crate) steals: AtomicU64,
    /// Requests pulled out of *this* worker's queue by sibling
    /// dispatchers. The served requests still count toward this worker's
    /// `completed`/window telemetry (attribution follows the queue of
    /// origin), so `in_flight` stays consistent.
    pub(crate) stolen: AtomicU64,
    pub(crate) queue_wait_ns: AtomicU64,
    pub(crate) max_queue_wait_ns: AtomicU64,
    pub(crate) max_queue_depth: AtomicU64,
    /// Recent-samples window (dispatcher writes, snapshots read; the
    /// critical sections are a few ring pushes / one aggregation pass).
    window: Mutex<Window>,
}

impl Default for Counters {
    fn default() -> Self {
        Self::new(crate::ServerConfig::default().stats_window)
    }
}

impl Counters {
    pub(crate) fn new(stats_window: usize) -> Self {
        Counters {
            submitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            dispatcher_restarts: AtomicU64::new(0),
            steals: AtomicU64::new(0),
            stolen: AtomicU64::new(0),
            queue_wait_ns: AtomicU64::new(0),
            max_queue_wait_ns: AtomicU64::new(0),
            max_queue_depth: AtomicU64::new(0),
            window: Mutex::new(Window::new(stats_window.max(1))),
        }
    }

    fn window(&self) -> std::sync::MutexGuard<'_, Window> {
        // Samples are plain scalars; a poisoned lock is simply taken over.
        self.window
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Record one request leaving the queue after `wait` in it (test
    /// convenience; the dispatcher batches whole rounds through
    /// [`record_dequeues`](Self::record_dequeues)).
    #[cfg(test)]
    pub(crate) fn record_dequeue(&self, wait: Duration) {
        let ns = u64::try_from(wait.as_nanos()).unwrap_or(u64::MAX);
        self.record_dequeues(&[ns]);
    }

    /// Record a whole drained round's queue waits (ns) under **one**
    /// window-lock acquisition. The dispatcher previously took the lock
    /// once per request per round; under multi-worker serving that mutex
    /// is contended cross-thread (every dispatcher and every stats
    /// snapshot), so per-round batching keeps it off the per-request
    /// path.
    pub(crate) fn record_dequeues(&self, waits_ns: &[u64]) {
        if waits_ns.is_empty() {
            return;
        }
        let mut sum: u64 = 0;
        let mut max: u64 = 0;
        for &ns in waits_ns {
            sum = sum.saturating_add(ns);
            max = max.max(ns);
        }
        self.queue_wait_ns.fetch_add(sum, Ordering::Relaxed);
        self.max_queue_wait_ns.fetch_max(max, Ordering::Relaxed);
        let mut window = self.window();
        for &ns in waits_ns {
            window.push_wait(ns);
        }
    }

    /// Record one served response's mean coverage into the window (test
    /// convenience; see [`record_coverages`](Self::record_coverages)).
    #[cfg(test)]
    pub(crate) fn record_coverage(&self, coverage: f64) {
        self.record_coverages(&[coverage]);
    }

    /// Record a served group's coverages under one window-lock
    /// acquisition (the coverage-side counterpart of
    /// [`record_dequeues`](Self::record_dequeues)).
    pub(crate) fn record_coverages(&self, coverages: &[f64]) {
        if coverages.is_empty() {
            return;
        }
        let mut window = self.window();
        for &coverage in coverages {
            window.push_coverage(coverage);
        }
    }

    /// Aggregate the sliding window into a [`LoadSnapshot`].
    /// `components_total`/`components_open` come from the fan-out
    /// service's circuit breakers (see
    /// [`FanOutService::open_components`](at_core::FanOutService::open_components)).
    pub(crate) fn load_snapshot(
        &self,
        queue_depth: usize,
        queue_capacity: usize,
        components_total: usize,
        components_open: usize,
    ) -> LoadSnapshot {
        let window = self.window();
        let sampled = window.waits_ns.len();
        let (mean_ns, p99_ns) = if sampled == 0 {
            (0, 0)
        } else {
            let sum: u128 = window.waits_ns.iter().map(|&ns| u128::from(ns)).sum();
            let mean = u64::try_from(sum / sampled as u128).unwrap_or(u64::MAX);
            // Thin windows report the *max* sample as "p99": with fewer
            // than 100 samples there is no observation beyond the
            // maximum to interpolate toward, and anything short of the
            // max would let a just-(re)started worker exit the ladder on
            // a bogusly low tail estimate. At >= 100 samples this is the
            // standard nearest-rank percentile.
            let p99 = if sampled < 100 {
                window.waits_ns.iter().copied().max().unwrap_or(0)
            } else {
                let mut sorted: Vec<u64> = window.waits_ns.iter().copied().collect();
                sorted.sort_unstable();
                let idx = ((sampled as f64 * 0.99).ceil() as usize).clamp(1, sampled) - 1;
                sorted.get(idx).copied().unwrap_or(u64::MAX)
            };
            (mean, p99)
        };
        let mean_coverage = if window.coverages.is_empty() {
            1.0
        } else {
            window.coverages.iter().sum::<f64>() / window.coverages.len() as f64
        };
        LoadSnapshot {
            queue_depth,
            queue_capacity,
            sampled,
            mean_queue_wait: Duration::from_nanos(mean_ns),
            p99_queue_wait: Duration::from_nanos(p99_ns),
            mean_coverage,
            components_total,
            components_open,
        }
    }

    pub(crate) fn snapshot(
        &self,
        queue_depth: usize,
        queue_capacity: usize,
        components_total: usize,
        components_open: usize,
        stopped: bool,
    ) -> ServerStats {
        let submitted = self.submitted.load(Ordering::Relaxed);
        let completed = self.completed.load(Ordering::Relaxed);
        let shed = self.shed.load(Ordering::Relaxed);
        ServerStats {
            submitted,
            rejected: self.rejected.load(Ordering::Relaxed),
            completed,
            shed,
            in_flight: submitted.saturating_sub(completed).saturating_sub(shed),
            queue_depth,
            max_queue_depth: self.max_queue_depth.load(Ordering::Relaxed),
            batches_dispatched: self.batches.load(Ordering::Relaxed),
            dispatcher_restarts: self.dispatcher_restarts.load(Ordering::Relaxed),
            steals: self.steals.load(Ordering::Relaxed),
            stolen: self.stolen.load(Ordering::Relaxed),
            stopped,
            queue_wait_total: Duration::from_nanos(self.queue_wait_ns.load(Ordering::Relaxed)),
            queue_wait_max: Duration::from_nanos(self.max_queue_wait_ns.load(Ordering::Relaxed)),
            load: self.load_snapshot(
                queue_depth,
                queue_capacity,
                components_total,
                components_open,
            ),
        }
    }
}

/// What the server's recent past looks like: the sliding-window load
/// signals an [`AdmissionController`](crate::AdmissionController) decides
/// on, aggregated over the most recent
/// [`stats_window`](crate::ServerConfig::stats_window) dispatched
/// requests.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LoadSnapshot {
    /// Requests waiting in the queue at snapshot time.
    pub queue_depth: usize,
    /// The queue's configured capacity.
    pub queue_capacity: usize,
    /// Queue-wait samples currently in the window (0 on a cold server).
    pub sampled: usize,
    /// Mean queue wait over the window — unlike a cumulative mean, this
    /// *recovers* once a burst subsides and its samples slide out.
    pub mean_queue_wait: Duration,
    /// p99 queue wait over the window.
    pub p99_queue_wait: Duration,
    /// Mean response coverage over the window, in `[0, 1]`; `1.0` on a
    /// cold server (no evidence of degradation yet).
    pub mean_coverage: f64,
    /// Fan-out components behind the service (breaker count).
    pub components_total: usize,
    /// Components whose circuit breaker is currently
    /// [`Open`](at_core::BreakerState::Open) — legs being skipped at
    /// ~zero cost while they cool down. A controller may treat a service
    /// already degraded by failures as closer to its ladder's next rung.
    pub components_open: usize,
}

impl LoadSnapshot {
    /// Queue depth as a fraction of capacity, in `[0, 1]` (1.0 = full).
    pub fn depth_ratio(&self) -> f64 {
        if self.queue_capacity == 0 {
            return 0.0;
        }
        self.queue_depth as f64 / self.queue_capacity as f64
    }
}

/// A telemetry snapshot of one [`Server`](crate::Server).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ServerStats {
    /// Requests accepted into the queue (including those already served).
    pub submitted: u64,
    /// `try_submit` calls bounced with [`SubmitError::Busy`](crate::SubmitError::Busy).
    pub rejected: u64,
    /// Requests whose ticket has been fulfilled with a response.
    pub completed: u64,
    /// Accepted requests dropped by the admission controller
    /// ([`Decision::Shed`](crate::Decision::Shed)); their tickets report
    /// [`Canceled`](crate::Canceled).
    pub shed: u64,
    /// Accepted requests not yet completed or shed (queued or being
    /// served).
    pub in_flight: u64,
    /// Requests waiting in the queue right now.
    pub queue_depth: usize,
    /// High-water mark of `queue_depth`.
    pub max_queue_depth: u64,
    /// Micro-batches the dispatcher has driven through the service.
    pub batches_dispatched: u64,
    /// Times the supervisor respawned a panicked dispatcher thread
    /// (see [`ServerConfig::max_restarts`](crate::ServerConfig::max_restarts)).
    pub dispatcher_restarts: u64,
    /// Requests this worker's dispatcher served out of *sibling* workers'
    /// queues (work stealing; `0` outside multi-worker deployments — see
    /// [`ShardedServer`](crate::ShardedServer)).
    pub steals: u64,
    /// Requests sibling dispatchers pulled out of *this* worker's queue.
    /// They still complete against this worker's `completed` and window
    /// telemetry (attribution follows the queue of origin).
    pub stolen: u64,
    /// True once the supervisor gave up restarting the dispatcher
    /// (restart budget exhausted): the server is terminally stopped,
    /// queued tickets were canceled, and submissions return
    /// [`SubmitError::Stopped`](crate::SubmitError::Stopped).
    pub stopped: bool,
    /// Total time completed-or-dispatched requests spent queued
    /// (cumulative, lifetime).
    pub queue_wait_total: Duration,
    /// Longest single queue wait observed (lifetime).
    pub queue_wait_max: Duration,
    /// The sliding-window load signals (recent waits, depth ratio,
    /// coverage) — what the admission controller sees.
    pub load: LoadSnapshot,
}

impl ServerStats {
    /// Mean micro-batch size (requests per dispatch); the typed zero
    /// `0.0` — never `NaN` — before the first dispatch.
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches_dispatched == 0 {
            return 0.0;
        }
        (self.completed + self.shed) as f64 / self.batches_dispatched as f64
    }

    /// Mean queue wait over the recent sliding window (backed by
    /// [`LoadSnapshot::mean_queue_wait`], so a long-lived server's value
    /// tracks *current* load and recovers after a burst); the typed zero
    /// [`Duration::ZERO`] while the window is empty.
    pub fn mean_queue_wait(&self) -> Duration {
        self.load.mean_queue_wait
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_derives_in_flight_and_means() {
        let c = Counters::new(256);
        c.submitted.store(10, Ordering::Relaxed);
        c.completed.store(5, Ordering::Relaxed);
        c.shed.store(1, Ordering::Relaxed);
        c.batches.store(3, Ordering::Relaxed);
        c.record_dequeue(Duration::from_millis(9));
        c.record_dequeue(Duration::from_millis(3));
        let s = c.snapshot(4, 16, 3, 0, false);
        assert_eq!(s.in_flight, 4, "in flight excludes completed and shed");
        assert_eq!(s.queue_depth, 4);
        assert_eq!(s.mean_batch_size(), 2.0);
        assert_eq!(s.queue_wait_total, Duration::from_millis(12));
        assert_eq!(s.queue_wait_max, Duration::from_millis(9));
        assert_eq!(s.mean_queue_wait(), Duration::from_millis(6));
        assert_eq!(s.load.sampled, 2);
        assert_eq!(s.load.p99_queue_wait, Duration::from_millis(9));
        assert_eq!(s.load.queue_capacity, 16);
        assert_eq!(s.load.depth_ratio(), 0.25);
    }

    #[test]
    fn idle_stats_have_typed_zero_means() {
        // Regression: both mean helpers must return their types' zeros —
        // never NaN — before the first dispatch.
        let s = Counters::new(8).snapshot(0, 8, 3, 0, false);
        assert_eq!(s.mean_batch_size(), 0.0);
        assert!(!s.mean_batch_size().is_nan());
        assert_eq!(s.mean_queue_wait(), Duration::ZERO);
        assert_eq!(s.in_flight, 0);
        assert_eq!(s.load.sampled, 0);
        assert_eq!(s.load.mean_coverage, 1.0, "cold server: no degradation");
    }

    #[test]
    fn windowed_mean_recovers_after_a_burst_subsides() {
        // Regression for the all-time cumulative mean: a long-lived
        // server's mean_queue_wait must reflect current load, so once a
        // burst's samples slide out of the window the mean drops back.
        let c = Counters::new(32);
        for _ in 0..32 {
            c.record_dequeue(Duration::from_millis(80)); // the burst
        }
        let during = c.snapshot(0, 64, 3, 0, false);
        assert_eq!(during.mean_queue_wait(), Duration::from_millis(80));
        for _ in 0..32 {
            c.record_dequeue(Duration::from_micros(50)); // calm again
        }
        let after = c.snapshot(0, 64, 3, 0, false);
        assert_eq!(
            after.mean_queue_wait(),
            Duration::from_micros(50),
            "burst samples slid out of the window"
        );
        // The cumulative total still remembers the burst (monitoring),
        // while the control signal has recovered.
        assert!(after.queue_wait_total > Duration::from_millis(2000));
        assert_eq!(after.queue_wait_max, Duration::from_millis(80));
    }

    #[test]
    fn window_p99_tracks_the_tail() {
        // 50 samples: the nearest-rank p99 index is the largest sample.
        let c = Counters::new(200);
        for _ in 0..49 {
            c.record_dequeue(Duration::from_millis(1));
        }
        c.record_dequeue(Duration::from_millis(100));
        let load = c.load_snapshot(0, 8, 3, 0);
        assert_eq!(load.sampled, 50);
        assert_eq!(load.p99_queue_wait, Duration::from_millis(100));
        assert!(load.mean_queue_wait < Duration::from_millis(3));
    }

    #[test]
    fn thin_window_p99_is_the_max_sample() {
        // Regression: with < 100 samples, nearest-rank indexing short of
        // the tail would report a "p99" *below* the worst observed wait,
        // letting a just-(re)started worker exit the degradation ladder
        // on a bogusly low tail estimate. Thin windows must report the
        // max.
        // Window of 1: the single sample *is* the tail.
        let c = Counters::new(256);
        c.record_dequeue(Duration::from_millis(40));
        assert_eq!(
            c.load_snapshot(0, 8, 3, 0).p99_queue_wait,
            Duration::from_millis(40)
        );

        // Window of 2: the larger sample, never the smaller.
        let c = Counters::new(256);
        c.record_dequeue(Duration::from_millis(1));
        c.record_dequeue(Duration::from_millis(90));
        let load = c.load_snapshot(0, 8, 3, 0);
        assert_eq!(load.sampled, 2);
        assert_eq!(load.p99_queue_wait, Duration::from_millis(90));

        // Window of 99: still below the threshold — max, not rank 98.
        let c = Counters::new(256);
        for ms in 1..=98u64 {
            c.record_dequeue(Duration::from_millis(ms));
        }
        c.record_dequeue(Duration::from_millis(500));
        let load = c.load_snapshot(0, 8, 3, 0);
        assert_eq!(load.sampled, 99);
        assert_eq!(load.p99_queue_wait, Duration::from_millis(500));

        // At 100+ samples the nearest-rank estimate takes over (and with
        // exactly 100 samples rank ⌈0.99·100⌉ is the 99th of 100 — the
        // second-largest).
        c.record_dequeue(Duration::from_millis(700));
        let load = c.load_snapshot(0, 8, 3, 0);
        assert_eq!(load.sampled, 100);
        assert_eq!(load.p99_queue_wait, Duration::from_millis(500));
    }

    #[test]
    fn batched_recording_matches_per_request_recording() {
        // The dispatcher records a whole drained round under one lock;
        // the aggregates must be byte-identical to per-request recording.
        let batched = Counters::new(8);
        let singly = Counters::new(8);
        let waits = [5_000_000u64, 1_000_000, 9_000_000];
        batched.record_dequeues(&waits);
        for &ns in &waits {
            singly.record_dequeue(Duration::from_nanos(ns));
        }
        batched.record_coverages(&[0.5, 1.0]);
        for cov in [0.5, 1.0] {
            singly.record_coverage(cov);
        }
        let b = batched.snapshot(0, 8, 3, 0, false);
        let s = singly.snapshot(0, 8, 3, 0, false);
        assert_eq!(b.queue_wait_total, s.queue_wait_total);
        assert_eq!(b.queue_wait_max, s.queue_wait_max);
        assert_eq!(b.load, s.load);

        // Empty rounds are free: no lock, no samples.
        batched.record_dequeues(&[]);
        batched.record_coverages(&[]);
        assert_eq!(batched.snapshot(0, 8, 3, 0, false).load, b.load);
    }

    #[test]
    fn coverage_window_averages_recent_responses() {
        let c = Counters::new(4);
        for cov in [0.0, 0.0, 1.0, 1.0, 1.0, 1.0] {
            c.record_coverage(cov);
        }
        // Window of 4 keeps only the last four samples.
        let load = c.load_snapshot(0, 8, 3, 0);
        assert_eq!(load.mean_coverage, 1.0);
    }

    #[test]
    fn depth_ratio_handles_zero_capacity() {
        let load = Counters::new(4).load_snapshot(5, 0, 3, 1);
        assert_eq!(load.depth_ratio(), 0.0);
    }
}

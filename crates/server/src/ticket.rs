//! One-shot completion handles for submitted requests.
//!
//! A [`Ticket`] is the caller's half of a oneshot channel created at
//! submission time: the dispatcher fulfils it with the composed
//! [`ServiceResponse`](at_core::ServiceResponse) once the request's
//! micro-batch has been served. Tickets can be waited on (blocking, with
//! or without timeout), polled non-blockingly, or awaited — [`Ticket`]
//! implements [`Future`], so thousands of in-flight requests can be
//! multiplexed from synchronous and asynchronous callers alike.

use std::future::Future;
use std::pin::Pin;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::task::{Context, Poll, Waker};
use std::time::Duration;

/// The server dropped the request before fulfilling it. Exactly three
/// producers exist:
///
/// 1. **Admission shed** — the controller dropped the request under
///    extreme overload ([`Decision::Shed`](crate::Decision::Shed),
///    counted in [`ServerStats::shed`](crate::ServerStats::shed)).
/// 2. **Crashed micro-batch** — the request was in flight when a fault
///    escaped the fan-out's containment and killed the dispatcher (the
///    sender dropped during the unwind); the supervisor respawns the
///    dispatcher, so *queued* requests are unaffected.
/// 3. **Terminal stop** — the supervisor exhausted its restart budget
///    ([`ServerConfig::max_restarts`](crate::ServerConfig::max_restarts))
///    and canceled everything still queued; subsequent submissions get
///    [`SubmitError::Stopped`](crate::SubmitError::Stopped).
///
/// Orderly shutdown *drains* the queue, so a canceled ticket never
/// signals normal teardown.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Canceled;

impl std::fmt::Display for Canceled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "the server dropped this request before completing it")
    }
}

impl std::error::Error for Canceled {}

struct State<T> {
    value: Option<T>,
    /// Sender gone without fulfilling (dispatcher crash) or value already
    /// taken: waiters must not block forever.
    closed: bool,
    waker: Option<Waker>,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    ready: Condvar,
}

impl<T> Shared<T> {
    /// Lock the state; a waiter that panicked while holding the lock
    /// cannot corrupt an `Option` swap, so poisoning is ignored.
    fn state(&self) -> MutexGuard<'_, State<T>> {
        self.state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

/// The dispatcher's half: fulfil exactly once, or cancel on drop.
pub(crate) struct TicketSender<T> {
    shared: Arc<Shared<T>>,
    fulfilled: bool,
}

impl<T> TicketSender<T> {
    /// Complete the ticket; wakes blocking and async waiters.
    pub(crate) fn fulfill(mut self, value: T) {
        let mut state = self.shared.state();
        state.value = Some(value);
        let waker = state.waker.take();
        drop(state);
        self.fulfilled = true;
        self.shared.ready.notify_all();
        if let Some(waker) = waker {
            waker.wake();
        }
    }
}

impl<T> Drop for TicketSender<T> {
    fn drop(&mut self) {
        if self.fulfilled {
            return;
        }
        let mut state = self.shared.state();
        state.closed = true;
        let waker = state.waker.take();
        drop(state);
        self.shared.ready.notify_all();
        if let Some(waker) = waker {
            waker.wake();
        }
    }
}

/// A pollable/awaitable handle to one submitted request's response.
pub struct Ticket<T> {
    shared: Arc<Shared<T>>,
}

/// Create a connected sender/ticket pair.
pub(crate) fn ticket<T>() -> (TicketSender<T>, Ticket<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            value: None,
            closed: false,
            waker: None,
        }),
        ready: Condvar::new(),
    });
    (
        TicketSender {
            shared: shared.clone(),
            fulfilled: false,
        },
        Ticket { shared },
    )
}

impl<T> Ticket<T> {
    /// True once the response is available (or the request was canceled).
    pub fn is_ready(&self) -> bool {
        let state = self.shared.state();
        state.value.is_some() || state.closed
    }

    /// Take the response if it is ready, without blocking. Returns `None`
    /// while the request is still in flight.
    pub fn try_take(&mut self) -> Option<Result<T, Canceled>> {
        let mut state = self.shared.state();
        match state.value.take() {
            Some(value) => {
                state.closed = true;
                Some(Ok(value))
            }
            None if state.closed => Some(Err(Canceled)),
            None => None,
        }
    }

    /// Block until the response arrives.
    pub fn wait(self) -> Result<T, Canceled> {
        let mut state = self.shared.state();
        loop {
            if let Some(value) = state.value.take() {
                return Ok(value);
            }
            if state.closed {
                return Err(Canceled);
            }
            state = self
                .shared
                .ready
                .wait(state)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }

    /// Block for at most `timeout`; `Ok(None)` means still in flight.
    pub fn wait_timeout(&mut self, timeout: Duration) -> Result<Option<T>, Canceled> {
        let mut state = self.shared.state();
        let Some(deadline) = at_core::clock::now().checked_add(timeout) else {
            // Unrepresentable deadline (e.g. `Duration::MAX` as "wait
            // forever"): wait unbounded instead of overflowing.
            loop {
                if let Some(value) = state.value.take() {
                    state.closed = true;
                    return Ok(Some(value));
                }
                if state.closed {
                    return Err(Canceled);
                }
                state = self
                    .shared
                    .ready
                    .wait(state)
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
            }
        };
        loop {
            if let Some(value) = state.value.take() {
                state.closed = true;
                return Ok(Some(value));
            }
            if state.closed {
                return Err(Canceled);
            }
            let now = at_core::clock::now();
            if now >= deadline {
                return Ok(None);
            }
            let (guard, _) = self
                .shared
                .ready
                .wait_timeout(state, deadline - now)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            state = guard;
        }
    }
}

impl<T> Future for Ticket<T> {
    type Output = Result<T, Canceled>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut state = self.shared.state();
        if let Some(value) = state.value.take() {
            state.closed = true;
            return Poll::Ready(Ok(value));
        }
        if state.closed {
            return Poll::Ready(Err(Canceled));
        }
        state.waker = Some(cx.waker().clone());
        Poll::Pending
    }
}

impl<T> std::fmt::Debug for Ticket<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ticket")
            .field("ready", &self.is_ready())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fulfil_then_wait() {
        let (tx, ticket) = ticket();
        tx.fulfill(41);
        assert!(ticket.is_ready());
        assert_eq!(ticket.wait(), Ok(41));
    }

    #[test]
    fn wait_blocks_until_fulfilled() {
        let (tx, ticket) = ticket();
        std::thread::scope(|s| {
            s.spawn(move || {
                std::thread::sleep(Duration::from_millis(10));
                tx.fulfill("done");
            });
            assert_eq!(ticket.wait(), Ok("done"));
        });
    }

    #[test]
    fn try_take_is_nonblocking_and_one_shot() {
        let (tx, mut ticket) = ticket();
        assert_eq!(ticket.try_take(), None);
        tx.fulfill(7);
        assert_eq!(ticket.try_take(), Some(Ok(7)));
        assert_eq!(
            ticket.try_take(),
            Some(Err(Canceled)),
            "value already taken"
        );
    }

    #[test]
    fn dropped_sender_cancels_instead_of_deadlocking() {
        let (tx, ticket) = ticket::<u8>();
        drop(tx);
        assert!(ticket.is_ready());
        assert_eq!(ticket.wait(), Err(Canceled));
    }

    #[test]
    fn wait_timeout_times_out_then_succeeds() {
        let (tx, mut ticket) = ticket();
        assert_eq!(ticket.wait_timeout(Duration::from_millis(5)), Ok(None));
        tx.fulfill(3);
        assert_eq!(ticket.wait_timeout(Duration::from_millis(5)), Ok(Some(3)));
    }

    #[test]
    fn wait_timeout_accepts_duration_max_as_wait_forever() {
        // Regression: `Instant::now() + Duration::MAX` overflows; the
        // wait-forever idiom must block, not panic.
        let (tx, mut ticket) = ticket();
        std::thread::scope(|s| {
            s.spawn(move || {
                std::thread::sleep(Duration::from_millis(10));
                tx.fulfill(5);
            });
            assert_eq!(ticket.wait_timeout(Duration::MAX), Ok(Some(5)));
        });
    }

    #[test]
    fn ticket_is_a_future() {
        let (tx, ticket) = ticket();
        let mut ticket = Box::pin(ticket);
        let waker = Waker::noop();
        let mut cx = Context::from_waker(waker);
        assert!(ticket.as_mut().poll(&mut cx).is_pending());
        tx.fulfill(9);
        assert_eq!(ticket.as_mut().poll(&mut cx), Poll::Ready(Ok(9)));
    }
}

//! # at-server
//!
//! The asynchronous serving front end of the AccuracyTrader reproduction:
//! a hand-rolled reactor that lets one process multiplex thousands of
//! in-flight requests against a single
//! [`FanOutService`](at_core::FanOutService), with the paper's deadline
//! semantics preserved end to end.
//!
//! Algorithm 1 measures its latency deadline `l_spe` from the request's
//! *submission* instant, so a serving system's queueing delay must count
//! against the deadline — a synchronous `serve` call cannot express that,
//! because callers queue outside the service where no clock is running.
//! [`Server`] closes the gap:
//!
//! * **Bounded submission queue.** [`Server::try_submit`] stamps each
//!   request with its [`Instant`] at enqueue and returns a [`Ticket`]
//!   immediately; a full queue bounces with [`SubmitError::Busy`]
//!   (backpressure), and [`Server::submit`] is the blocking variant.
//! * **Micro-batching dispatcher.** A dedicated thread drains the queue
//!   into micro-batches of at most
//!   [`max_batch`](ServerConfig::max_batch) requests, groups each batch
//!   by [`ExecutionPolicy`], and drives one
//!   [`FanOutService::serve_batch_at`](at_core::FanOutService::serve_batch_at)
//!   call per group — one fan-out and one shared synopsis pass per
//!   component for the whole micro-batch, with duplicate requests
//!   collapsed under clock-free policies.
//! * **Per-request completion handles.** Each submission's [`Ticket`] is
//!   a oneshot: block on it ([`Ticket::wait`]), poll it
//!   ([`Ticket::try_take`]), or `.await` it ([`Ticket`] implements
//!   `Future`), so the number of in-flight requests is limited by the
//!   queue bound, not by caller threads.
//!
//! ## The deadline-accounting contract
//!
//! A request's `submitted` instant is its enqueue instant (or the explicit
//! instant given to [`Server::try_submit_at`], for replay/testing). Every
//! layer below measures `l_spe` from that instant, so **time spent waiting
//! in the submission queue — and behind earlier requests of the same
//! micro-batch — counts against `Deadline` policies** exactly like the
//! paper's queueing delay: a request that waited past its whole deadline
//! degrades to synopsis-only coverage instead of blowing the tail. Under
//! clock-free policies (`Exact`, `SynopsisOnly`, `Budgeted`) responses are
//! *identical* to calling `serve_at` with the same submitted instants;
//! only `ServiceResponse::elapsed` reflects the waiting.
//!
//! ## Telemetry and the control plane
//!
//! [`Server::stats`] exposes queue depth, high-water marks, batch counts,
//! cumulative/max queue wait, and a **sliding-window** [`LoadSnapshot`]
//! (recent mean/p99 queue wait, depth/capacity ratio, recent response
//! coverage) — the feedback signals the admission controller consumes.
//!
//! Every dispatch round flows through the control plane (see
//! [`control`](crate::control) for the controllers):
//!
//! ```text
//!   submission queue ──drain──▶ micro-batch (≤ max_batch, FIFO)
//!                                  │
//!                                  ▼
//!             LoadSnapshot from the sliding window
//!                                  │
//!                   controller.observe(&snapshot)
//!                                  │
//!             per request, newest submission first:
//!              controller.decide(&snapshot, &policy)
//!                 ├─ Admit            keep the requested policy
//!                 ├─ Degrade(rung)    swap in the cheaper rung
//!                 └─ Shed             drop; ticket → Canceled
//!                                  │
//!                                  ▼
//!            group by effective policy (first appearance)
//!                                  │
//!                                  ▼
//!              one serve_batch_at call per policy group
//!                                  │
//!                                  ▼
//!        fulfil tickets; record waits + coverage into window
//! ```
//!
//! The default controller is [`NoControl`] — every request admitted, the
//! exact pre-control dispatcher behavior (proptest-proven). Plug in a
//! [`LadderController`] via [`Server::with_controller`] to get the
//! paper's overload story: under sustained queue pressure it degrades the
//! newest fraction of traffic down the
//! [`DegradationLadder`](at_core::DegradationLadder) (`Deadline` →
//! `Budgeted` → `SynopsisOnly`) instead of letting queue wait blow every
//! deadline, and recovers with hysteresis once the backlog drains.
//!
//! ## Supervision and the terminal stop
//!
//! Most component faults never reach this crate: the fan-out contains a
//! panicking leg at the containment boundary and serves from the
//! survivors (see `at_core::containment`). What *can* still kill the
//! dispatcher thread is a fault on the dispatcher's own stack — above
//! all a panicking `compose`, which runs outside the per-leg boundary. A
//! supervisor thread owns the dispatcher: when it panics, only the
//! in-flight micro-batch's tickets report [`Canceled`] (their senders
//! drop during the unwind); still-queued entries survive untouched, and
//! the supervisor respawns the dispatcher with bounded exponential
//! backoff. A dispatcher that completed requests since the previous
//! crash earns its restart budget back; after
//! [`max_restarts`](ServerConfig::max_restarts) consecutive no-progress
//! crashes the supervisor gives up — the server enters a **terminal
//! stopped state**: queued tickets are canceled and every submission is
//! answered with [`SubmitError::Stopped`] (distinct from the transient
//! [`SubmitError::Busy`], which invites a retry).
//!
//! Orderly [`Server::shutdown`] (and `Drop`) stops accepting, **drains**
//! every queued request, and joins the dispatcher, so no ticket is left
//! dangling; a ticket only reports [`Canceled`] if it was in a crashed
//! micro-batch, if the server stopped terminally — or if the admission
//! controller shed the request under extreme overload (counted in
//! [`ServerStats::shed`]).

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use at_core::{clock, ComposableService, ExecutionPolicy, FanOutService, ServiceResponse};

pub mod control;
pub mod shard;
mod stats;
mod ticket;

pub use control::{AdmissionController, Decision, LadderConfig, LadderController, NoControl};
pub use shard::{ClusterStats, RoutingStrategy, ShardConfig, ShardedServer};
pub use stats::{LoadSnapshot, ServerStats};
pub use ticket::{Canceled, Ticket};

use stats::Counters;
use ticket::TicketSender;

/// Sizing of a [`Server`]'s queue, micro-batches, and telemetry window.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Most requests allowed to wait in the submission queue; beyond it,
    /// [`Server::try_submit`] bounces with [`SubmitError::Busy`].
    pub queue_capacity: usize,
    /// Most requests per dispatched micro-batch. Larger batches amortize
    /// the fan-out and synopsis pass further but make late-in-batch
    /// `Deadline` requests wait longer behind their batch.
    pub max_batch: usize,
    /// Samples kept in the sliding telemetry window backing
    /// [`LoadSnapshot`] (and [`ServerStats::mean_queue_wait`]): large
    /// enough to smooth one micro-batch, small enough that a subsided
    /// burst slides out quickly.
    pub stats_window: usize,
    /// Consecutive no-progress dispatcher crashes the supervisor absorbs
    /// before giving up. Each crash inside this budget respawns the
    /// dispatcher (queued work survives; only the in-flight batch's
    /// tickets cancel); completing any request since the previous crash
    /// resets the budget. Exceeding it stops the server terminally:
    /// queued tickets cancel and submissions return
    /// [`SubmitError::Stopped`].
    pub max_restarts: u32,
    /// Base delay before the first respawn; doubles per consecutive
    /// crash (capped), so a hard crash loop cannot spin a core.
    pub restart_backoff: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            queue_capacity: 4096,
            max_batch: 64,
            stats_window: 256,
            max_restarts: 5,
            restart_backoff: Duration::from_millis(1),
        }
    }
}

impl ServerConfig {
    /// Override the queue capacity.
    pub fn with_queue_capacity(mut self, queue_capacity: usize) -> Self {
        self.queue_capacity = queue_capacity;
        self
    }

    /// Override the micro-batch cap.
    pub fn with_max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch;
        self
    }

    /// Override the sliding telemetry window size.
    pub fn with_stats_window(mut self, stats_window: usize) -> Self {
        self.stats_window = stats_window;
        self
    }

    /// Override the supervisor's consecutive-crash restart budget.
    pub fn with_max_restarts(mut self, max_restarts: u32) -> Self {
        self.max_restarts = max_restarts;
        self
    }

    /// Override the base respawn backoff.
    pub fn with_restart_backoff(mut self, restart_backoff: Duration) -> Self {
        self.restart_backoff = restart_backoff;
        self
    }
}

/// Why a submission was not accepted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is full — shed load or retry later.
    Busy,
    /// The server is shutting down and accepts no new requests.
    ShuttingDown,
    /// The supervisor exhausted its restart budget on a crashing
    /// dispatcher and stopped the server terminally (see
    /// [`ServerConfig::max_restarts`]). Unlike [`Busy`](Self::Busy),
    /// retrying cannot succeed.
    Stopped,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Busy => write!(f, "submission queue full"),
            SubmitError::ShuttingDown => write!(f, "server is shutting down"),
            SubmitError::Stopped => {
                write!(f, "server stopped: dispatcher restart budget exhausted")
            }
        }
    }
}

impl std::error::Error for SubmitError {}

/// One queued request.
struct Entry<R, T> {
    req: R,
    policy: ExecutionPolicy,
    /// Deadline-accounting instant (`l_spe` measures from here).
    submitted: Instant,
    /// Actual enqueue instant (queue-wait telemetry measures from here;
    /// equals `submitted` except under `try_submit_at`).
    enqueued: Instant,
    sender: TicketSender<T>,
}

struct QueueState<R, T> {
    entries: VecDeque<Entry<R, T>>,
    paused: bool,
    shutdown: bool,
    /// Terminal: the supervisor gave up restarting the dispatcher.
    stopped: bool,
}

/// State shared between the accept side and the dispatcher thread.
struct SharedQueue<R, T> {
    state: Mutex<QueueState<R, T>>,
    /// Dispatcher wakeup: work arrived, resumed, or shutting down.
    work: Condvar,
    /// Blocking-submitter wakeup: queue space freed, or shutting down.
    space: Condvar,
    counters: Counters,
    capacity: usize,
}

impl<R, T> SharedQueue<R, T> {
    /// Lock the queue state. The state is consistent between operations
    /// (a `VecDeque` plus flags), so a poisoned lock is simply taken over.
    fn state(&self) -> MutexGuard<'_, QueueState<R, T>> {
        self.state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

/// Shorthand for a service's queue-shared state.
type SharedOf<S> = SharedQueue<<S as at_core::ApproximateService>::Request, Response<S>>;

/// The steal ring of a multi-worker deployment: every worker's shared
/// queue, in worker order, installed once after all workers exist.
/// Dispatchers observe `None` until installation completes, so no
/// dispatcher can steal from a ring still under construction.
pub(crate) struct StealRing<S: ComposableService> {
    queues: OnceLock<Vec<Arc<SharedOf<S>>>>,
}

impl<S: ComposableService> StealRing<S> {
    pub(crate) fn new() -> Self {
        StealRing {
            queues: OnceLock::new(),
        }
    }

    /// Install the worker queues (first call wins; later calls no-op).
    pub(crate) fn install(&self, queues: Vec<Arc<SharedOf<S>>>) {
        let _ = self.queues.set(queues);
    }
}

/// One worker's view of the steal ring: the ring plus its own position
/// (a dispatcher never steals from itself).
pub(crate) struct StealPlan<S: ComposableService> {
    pub(crate) ring: Arc<StealRing<S>>,
    pub(crate) self_idx: usize,
}

/// How long a steal-enabled dispatcher sleeps between wakeups when its
/// own queue is dry: sibling backlog arrives without any local notify,
/// so the idle wait polls instead of parking indefinitely.
const STEAL_POLL: Duration = Duration::from_micros(500);

/// Shorthand for a service's queued entries.
type EntryOf<S> = Entry<<S as at_core::ApproximateService>::Request, Response<S>>;

/// A successfully stolen round: the victim's queue (telemetry home), the
/// poached entries, and the victim's pre-steal depth.
type StolenRound<S> = (Arc<SharedOf<S>>, Vec<EntryOf<S>>, usize);

/// The response type a server for service `S` completes tickets with.
pub type Response<S> = ServiceResponse<<S as ComposableService>::Response>;

/// An async serving front end over one [`FanOutService`].
///
/// See the [crate docs](crate) for the micro-batching and
/// deadline-accounting contract. Submission takes `&self`, so one
/// `Server` can be shared across accept threads; [`Server::shutdown`]
/// (or `Drop`) drains the queue and joins the dispatcher.
pub struct Server<S>
where
    S: ComposableService,
{
    service: Arc<FanOutService<S>>,
    shared: Arc<SharedOf<S>>,
    supervisor: Option<JoinHandle<()>>,
}

impl<S> Server<S>
where
    S: ComposableService + Send + Sync + 'static,
    S::Request: Clone + PartialEq + Send + Sync + 'static,
    S::Output: Send + 'static,
    S::Response: Send + 'static,
{
    /// Start a server over `service`, spawning its dispatcher thread.
    /// Admission control defaults to [`NoControl`] (admit everything);
    /// see [`with_controller`](Self::with_controller).
    ///
    /// The service is shared: callers keeping a clone of the [`Arc`] can
    /// still serve synchronously (e.g. to cross-check responses) — the
    /// service's interior state (the output pool) is thread-safe.
    ///
    /// # Panics
    /// Panics when `config.queue_capacity` or `config.max_batch` is zero.
    pub fn new(service: Arc<FanOutService<S>>, config: ServerConfig) -> Self {
        Self::with_controller(service, config, NoControl)
    }

    /// [`new`](Self::new) with an explicit admission controller: the
    /// dispatcher consults it for every request of every micro-batch (see
    /// the [crate docs](crate) decision flow), so a [`LadderController`]
    /// can degrade or shed a fraction of traffic under overload.
    ///
    /// # Panics
    /// Panics when `config.queue_capacity` or `config.max_batch` is zero.
    pub fn with_controller(
        service: Arc<FanOutService<S>>,
        config: ServerConfig,
        controller: impl AdmissionController + 'static,
    ) -> Self {
        Self::spawn(service, config, controller, None)
    }

    /// The full-control constructor behind [`with_controller`]
    /// (Self::with_controller): a [`ShardedServer`] additionally wires
    /// each worker into the deployment's steal ring.
    pub(crate) fn spawn(
        service: Arc<FanOutService<S>>,
        config: ServerConfig,
        controller: impl AdmissionController + 'static,
        steal: Option<StealPlan<S>>,
    ) -> Self {
        assert!(config.queue_capacity > 0, "queue capacity must be >= 1");
        assert!(config.max_batch > 0, "micro-batch cap must be >= 1");
        let shared: Arc<SharedOf<S>> = Arc::new(SharedQueue {
            state: Mutex::new(QueueState {
                entries: VecDeque::new(),
                paused: false,
                shutdown: false,
                stopped: false,
            }),
            work: Condvar::new(),
            space: Condvar::new(),
            counters: Counters::new(config.stats_window),
            capacity: config.queue_capacity,
        });
        let supervisor = {
            let service = service.clone();
            let shared = shared.clone();
            std::thread::Builder::new()
                .name("at-server-supervisor".into())
                .spawn(move || supervise(&service, &shared, config, &controller, steal.as_ref()))
                // lint: allow(panic-freedom) reason=construction-time spawn failure is an unrecoverable environment error, not a serving-path condition
                .expect("spawn supervisor thread")
        };
        Server {
            service,
            shared,
            supervisor: Some(supervisor),
        }
    }

    /// [`new`](Self::new) taking the service by value.
    pub fn from_service(service: FanOutService<S>, config: ServerConfig) -> Self {
        Self::new(Arc::new(service), config)
    }

    /// The served fan-out service.
    pub fn service(&self) -> &Arc<FanOutService<S>> {
        &self.service
    }

    /// This worker's shared queue handle, for steal-ring installation.
    pub(crate) fn shared_handle(&self) -> Arc<SharedOf<S>> {
        self.shared.clone()
    }

    /// Submit a request without blocking: it is stamped submitted *now*
    /// (queue wait from here on counts against a `Deadline` policy) and
    /// queued for the next micro-batch. Errors with [`SubmitError::Busy`]
    /// when the bounded queue is full — the server's backpressure signal.
    pub fn try_submit(
        &self,
        req: S::Request,
        policy: ExecutionPolicy,
    ) -> Result<Ticket<Response<S>>, SubmitError> {
        self.try_submit_at(req, policy, clock::now())
    }

    /// [`try_submit`](Self::try_submit) with an explicit submission
    /// instant, for replaying recorded streams (arrival processes) and for
    /// deterministic deadline tests. Queue-wait *telemetry* still measures
    /// from the actual enqueue instant.
    pub fn try_submit_at(
        &self,
        req: S::Request,
        policy: ExecutionPolicy,
        submitted: Instant,
    ) -> Result<Ticket<Response<S>>, SubmitError> {
        let state = self.shared.state();
        if state.stopped {
            return Err(SubmitError::Stopped);
        }
        if state.shutdown {
            return Err(SubmitError::ShuttingDown);
        }
        if state.entries.len() >= self.shared.capacity {
            self.shared
                .counters
                .rejected
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            return Err(SubmitError::Busy);
        }
        Ok(self.enqueue(state, req, policy, submitted))
    }

    /// Submit a request, blocking while the queue is full. Errors only
    /// when the server is shutting down or terminally stopped.
    pub fn submit(
        &self,
        req: S::Request,
        policy: ExecutionPolicy,
    ) -> Result<Ticket<Response<S>>, SubmitError> {
        let mut state = self.shared.state();
        loop {
            if state.stopped {
                return Err(SubmitError::Stopped);
            }
            if state.shutdown {
                return Err(SubmitError::ShuttingDown);
            }
            if state.entries.len() < self.shared.capacity {
                break;
            }
            state = self
                .shared
                .space
                .wait(state)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
        Ok(self.enqueue(state, req, policy, clock::now()))
    }

    fn enqueue(
        &self,
        mut state: MutexGuard<'_, QueueState<S::Request, Response<S>>>,
        req: S::Request,
        policy: ExecutionPolicy,
        submitted: Instant,
    ) -> Ticket<Response<S>> {
        let (sender, ticket) = ticket::ticket();
        state.entries.push_back(Entry {
            req,
            policy,
            submitted,
            enqueued: clock::now(),
            sender,
        });
        let depth = state.entries.len() as u64;
        drop(state);
        let counters = &self.shared.counters;
        counters
            .submitted
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        counters
            .max_queue_depth
            .fetch_max(depth, std::sync::atomic::Ordering::Relaxed);
        self.shared.work.notify_one();
        ticket
    }

    /// Stop dispatching; queued and new requests wait until
    /// [`resume`](Self::resume). (Shutdown overrides a pause to drain.)
    pub fn pause(&self) {
        self.shared.state().paused = true;
    }

    /// Resume dispatching after [`pause`](Self::pause).
    pub fn resume(&self) {
        self.shared.state().paused = false;
        self.shared.work.notify_all();
    }

    /// Requests waiting in the queue right now.
    pub fn queue_depth(&self) -> usize {
        self.shared.state().entries.len()
    }

    /// Queue depth if the worker is still serving, `None` once terminally
    /// stopped — both read under one lock, for the router's least-loaded
    /// and failover placement.
    pub(crate) fn live_depth(&self) -> Option<usize> {
        let state = self.shared.state();
        if state.stopped {
            None
        } else {
            Some(state.entries.len())
        }
    }

    /// True once the supervisor has given up restarting a crashing
    /// dispatcher and stopped the server terminally (see
    /// [`ServerConfig::max_restarts`]); submissions now return
    /// [`SubmitError::Stopped`].
    pub fn is_stopped(&self) -> bool {
        self.shared.state().stopped
    }

    /// A telemetry snapshot (see [`ServerStats`]).
    pub fn stats(&self) -> ServerStats {
        self.shared.counters.snapshot(
            self.queue_depth(),
            self.shared.capacity,
            self.service.components().len(),
            self.service.open_components(),
            self.is_stopped(),
        )
    }

    /// Shut down: stop accepting, drain every queued request through the
    /// dispatcher (fulfilling all outstanding tickets), join it, and
    /// return the final telemetry. Dropping the server does the same.
    pub fn shutdown(mut self) -> ServerStats {
        self.begin_shutdown();
        if let Some(handle) = self.supervisor.take() {
            let _ = handle.join();
        }
        self.stats()
    }
}

impl<S> Server<S>
where
    S: ComposableService,
{
    fn begin_shutdown(&self) {
        self.shared.state().shutdown = true;
        self.shared.work.notify_all();
        self.shared.space.notify_all();
    }
}

impl<S> Drop for Server<S>
where
    S: ComposableService,
{
    fn drop(&mut self) {
        self.begin_shutdown();
        if let Some(handle) = self.supervisor.take() {
            let _ = handle.join();
        }
    }
}

/// The supervisor: run the dispatcher in a scoped thread and, when it
/// panics (a fault escaped the fan-out's per-leg containment — above all
/// a panicking `compose`, which runs on the dispatcher's own stack),
/// respawn it. Only the crashed micro-batch's tickets are lost (their
/// senders drop during the unwind, so waiters see [`Canceled`]);
/// still-queued entries survive the restart untouched.
///
/// The restart budget is per crash *streak*: completing any request
/// since the previous crash resets it, so a long-lived server that hits
/// an occasional poison request keeps serving, while a hard crash loop
/// (every respawn dies without progress) exhausts the budget
/// deterministically. On give-up the server enters the terminal stopped
/// state: queued tickets cancel, blocked submitters wake, and every
/// later submission answers [`SubmitError::Stopped`].
fn supervise<S>(
    service: &FanOutService<S>,
    shared: &SharedOf<S>,
    config: ServerConfig,
    controller: &dyn AdmissionController,
    steal: Option<&StealPlan<S>>,
) where
    S: ComposableService + Sync,
    S::Request: Clone + PartialEq + Send + Sync,
    S::Output: Send,
    S::Response: Send,
{
    let mut crash_streak: u32 = 0;
    let mut completed_at_last_crash: u64 = 0;
    loop {
        let run = std::thread::scope(|scope| {
            std::thread::Builder::new()
                .name("at-server-dispatcher".into())
                .spawn_scoped(scope, || {
                    dispatch_loop(service, shared, config.max_batch, controller, steal)
                })
                // lint: allow(panic-freedom) reason=spawn failure here is an unrecoverable environment error, and the supervisor thread owns no lock a panic could poison
                .expect("spawn dispatcher thread")
                .join()
        });
        match run {
            Ok(()) => return, // orderly exit: shut down and drained
            Err(payload) => {
                drop(payload); // the fault's payload, not ours to rethrow
                               // The dispatcher can die *between* draining a batch and
                               // notifying `space` — a submitter blocked on a then-full
                               // queue would sleep on freed room until some later
                               // notify (or forever on an otherwise idle server). Wake
                               // both sides now: blocked submitters re-check a queue
                               // with room, and a paused-then-resumed state is
                               // re-observed by the respawned dispatcher.
                shared.space.notify_all();
                shared.work.notify_all();
                let completed = shared
                    .counters
                    .completed
                    .load(std::sync::atomic::Ordering::Relaxed);
                if completed > completed_at_last_crash {
                    crash_streak = 0; // progress since last crash: budget back
                }
                completed_at_last_crash = completed;
                if crash_streak >= config.max_restarts {
                    mark_stopped(shared);
                    return;
                }
                crash_streak += 1;
                shared
                    .counters
                    .dispatcher_restarts
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                // Capped exponential backoff; skipped when a shutdown is
                // already pending so the drain stays prompt.
                let backoff = config
                    .restart_backoff
                    .saturating_mul(1u32 << (crash_streak - 1).min(10));
                if !backoff.is_zero() && !shared.state().shutdown {
                    std::thread::sleep(backoff);
                }
            }
        }
    }
}

/// Enter the terminal stopped state: cancel every queued ticket, and wake
/// the dispatcher waiters and blocked submitters so nobody blocks on a
/// queue that will never drain again.
fn mark_stopped<R, T>(shared: &SharedQueue<R, T>) {
    let mut state = shared.state();
    state.stopped = true;
    state.entries.clear(); // dropping the senders cancels the tickets
    drop(state);
    shared.work.notify_all();
    shared.space.notify_all();
}

/// What one dispatcher iteration acquired: a batch from its own queue,
/// or one stolen from a sibling worker's queue (whose shared handle
/// rides along so telemetry and tickets stay attributed to the home
/// worker).
enum Round<S: ComposableService> {
    Own(Vec<EntryOf<S>>, usize),
    Stolen(Arc<SharedOf<S>>, Vec<EntryOf<S>>, usize),
}

/// The dispatcher: drain micro-batches, consult the admission controller
/// per request, group by *effective* policy, serve each group in one
/// batched call, fulfil tickets. Exits once shut down **and** drained.
/// Runs under [`supervise`]; a panic here cancels only the drained
/// batch's tickets and the supervisor respawns the loop.
///
/// With a [`StealPlan`], a dispatcher whose own queue runs dry steals
/// the oldest half of the deepest sibling queue instead of parking:
/// zipf-skewed hash-affinity routing leaves some workers hot and some
/// idle, and a stolen batch still drains from *one* home queue, so the
/// duplicate-collapse locality that hash routing bought is preserved.
fn dispatch_loop<S>(
    service: &FanOutService<S>,
    shared: &SharedOf<S>,
    max_batch: usize,
    controller: &dyn AdmissionController,
    steal: Option<&StealPlan<S>>,
) where
    S: ComposableService + Sync,
    S::Request: Clone + PartialEq + Sync,
    S::Output: Send,
{
    // Per-round scratch, reused across the dispatcher's lifetime: the
    // whole round's waits/coverages flush into the stats window under
    // one lock each (`record_dequeues`/`record_coverages`), instead of
    // one lock acquisition per request.
    let mut waits_scratch: Vec<u64> = Vec::new();
    let mut coverage_scratch: Vec<f64> = Vec::new();
    loop {
        let round: Round<S> = 'acquire: {
            let mut state = shared.state();
            loop {
                if !state.entries.is_empty() && (!state.paused || state.shutdown) {
                    let depth = state.entries.len();
                    let take = depth.min(max_batch);
                    break 'acquire Round::Own(state.entries.drain(..take).collect(), depth);
                }
                if state.shutdown {
                    return; // drained
                }
                let Some(plan) = steal else {
                    state = shared
                        .work
                        .wait(state)
                        .unwrap_or_else(|poisoned| poisoned.into_inner());
                    continue;
                };
                // Own queue is dry (or paused): try a sibling before
                // sleeping. The lock is dropped first — stealing locks
                // the sibling's queue, and lock ordering across workers
                // must stay single-lock-at-a-time.
                drop(state);
                if let Some((home, batch, depth)) = try_steal(plan, max_batch) {
                    break 'acquire Round::Stolen(home, batch, depth);
                }
                let guard = shared.state();
                let (guard, _timeout) = shared
                    .work
                    .wait_timeout(guard, STEAL_POLL)
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
                state = guard;
            }
        };
        match round {
            Round::Own(batch, backlog) => {
                shared.space.notify_all();
                serve_round(
                    service,
                    shared,
                    batch,
                    backlog,
                    Some(controller),
                    &mut waits_scratch,
                    &mut coverage_scratch,
                );
            }
            Round::Stolen(home, batch, backlog) => {
                let n = batch.len() as u64;
                shared
                    .counters
                    .steals
                    .fetch_add(n, std::sync::atomic::Ordering::Relaxed);
                home.counters
                    .stolen
                    .fetch_add(n, std::sync::atomic::Ordering::Relaxed);
                // Stolen rounds skip admission control: the thief is idle
                // by definition, so serving at full price is the right
                // trade — the home worker's ladder reacts to whatever
                // backlog remains in its own queue.
                serve_round(
                    service,
                    &home,
                    batch,
                    backlog,
                    None,
                    &mut waits_scratch,
                    &mut coverage_scratch,
                );
            }
        }
    }
}

/// Steal the oldest half (capped at `max_batch`) of the deepest
/// eligible sibling queue. Paused and stopped siblings are never
/// touched (pausing must keep staged entries in place), and the drained
/// entries leave under the sibling's own lock, so every entry is owned
/// by exactly one dispatcher. Returns the home worker's shared handle
/// with the batch: completions and telemetry stay attributed to the
/// queue of origin.
fn try_steal<S>(plan: &StealPlan<S>, max_batch: usize) -> Option<StolenRound<S>>
where
    S: ComposableService,
{
    let queues = plan.ring.queues.get()?;
    let mut deepest: Option<(usize, usize)> = None;
    for (i, queue) in queues.iter().enumerate() {
        if i == plan.self_idx {
            continue;
        }
        let state = queue.state();
        if state.paused || state.stopped || state.entries.is_empty() {
            continue;
        }
        let depth = state.entries.len();
        if deepest.is_none_or(|(_, best)| depth > best) {
            deepest = Some((i, depth));
        }
    }
    let (victim, _) = deepest?;
    let home = queues.get(victim)?.clone();
    let mut state = home.state();
    // Re-checked under the victim's lock: the scan above released it.
    if state.paused || state.stopped || state.entries.is_empty() {
        return None;
    }
    let depth = state.entries.len();
    let take = depth.div_ceil(2).min(max_batch);
    // lint: allow(hot-path-alloc) reason=one Vec per successful steal, amortized over up to max_batch poached requests; the drain must leave the victim's lock quickly, so copying out beats serving under it
    let batch: Vec<EntryOf<S>> = state.entries.drain(..take).collect();
    drop(state);
    home.space.notify_all();
    Some((home, batch, depth))
}

/// Serve one acquired round against `home`'s telemetry: record the
/// round's queue waits (one window lock), consult the controller (own
/// rounds only), group by effective policy, drive one `serve_batch_at`
/// per group, and fulfil the tickets. Shared by own and stolen rounds —
/// `home` is the queue the batch came from.
fn serve_round<S>(
    service: &FanOutService<S>,
    home: &SharedOf<S>,
    batch: Vec<EntryOf<S>>,
    backlog: usize,
    controller: Option<&dyn AdmissionController>,
    waits_scratch: &mut Vec<u64>,
    coverage_scratch: &mut Vec<f64>,
) where
    S: ComposableService + Sync,
    S::Request: Clone + PartialEq + Sync,
    S::Output: Send,
{
    let dispatched = clock::now();
    waits_scratch.clear();
    for entry in &batch {
        let wait = dispatched.saturating_duration_since(entry.enqueued);
        waits_scratch.push(u64::try_from(wait.as_nanos()).unwrap_or(u64::MAX));
    }
    home.counters.record_dequeues(waits_scratch);
    home.counters
        .batches
        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);

    // The control plane (see the crate docs' decision flow): one
    // snapshot per round — including this round's just-recorded waits
    // and the backlog depth at drain time — then one decision per
    // request, consulted newest-first so "degrade the newest fraction
    // of traffic first" is what a fractional controller does. The
    // pass-through controller skips all of it: no snapshot, no
    // decisions buffer — the uncontrolled hot path is unchanged.
    let decisions: Option<Vec<Decision>> = match controller {
        None => None,
        Some(controller) if controller.is_pass_through() => None,
        Some(controller) => {
            let snapshot = home.counters.load_snapshot(
                backlog - batch.len(),
                home.capacity,
                service.components().len(),
                service.open_components(),
            );
            controller.observe(&snapshot);
            let mut decisions = vec![Decision::Admit; batch.len()];
            for (slot, entry) in decisions.iter_mut().zip(&batch).rev() {
                *slot = controller.decide(&snapshot, &entry.policy);
            }
            Some(decisions)
        }
    };

    // Group by effective policy in first-appearance order:
    // `serve_batch_at` drives one policy per call, and mixed-policy
    // streams are the norm (the controller degrades some requests,
    // not all — no batch splitting needed). Shed entries drop here:
    // dropping the sender cancels the ticket, and the shed counter
    // owns the accounting.
    let mut groups: Vec<(ExecutionPolicy, Vec<EntryOf<S>>)> = Vec::new();
    for (i, entry) in batch.into_iter().enumerate() {
        let decision = decisions
            .as_ref()
            .and_then(|d| d.get(i).copied())
            .unwrap_or(Decision::Admit);
        let policy = match decision {
            Decision::Shed => {
                home.counters
                    .shed
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                continue;
            }
            Decision::Degrade(rung) => rung,
            Decision::Admit => entry.policy,
        };
        match groups.iter_mut().find(|(p, _)| *p == policy) {
            Some((_, group)) => group.push(entry),
            None => groups.push((policy, vec![entry])),
        }
    }
    for (policy, group) in groups {
        let mut reqs = Vec::with_capacity(group.len());
        let mut submitted = Vec::with_capacity(group.len());
        let mut senders = Vec::with_capacity(group.len());
        for entry in group {
            reqs.push(entry.req);
            submitted.push(entry.submitted);
            senders.push(entry.sender);
        }
        let responses = service.serve_batch_at(&reqs, &policy, &submitted);
        coverage_scratch.clear();
        for response in &responses {
            coverage_scratch.push(response.mean_coverage());
        }
        // Coverage lands in the window before any of the group's tickets
        // resolve (one lock per group), preserving the old per-response
        // record-then-fulfil ordering for stats readers.
        home.counters.record_coverages(coverage_scratch);
        for (sender, response) in senders.into_iter().zip(responses) {
            home.counters
                .completed
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            sender.fulfill(response);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use at_core::{partition_rows, ApproximateService, Correlation, Ctx};
    use at_synopsis::{AggregationMode, SparseRow, SynopsisConfig};
    use std::time::Duration;

    /// Toy composable service: counts original rows each component
    /// processed (the shape used across at-core's own tests).
    struct CountService;

    impl ApproximateService for CountService {
        type Request = u32;
        type Output = usize;

        fn process_synopsis(&self, ctx: Ctx<'_>, _r: &u32, corr: &mut Vec<Correlation>) -> usize {
            corr.extend(ctx.store.synopsis().iter().map(|p| Correlation {
                node: p.node,
                score: p.member_count as f64,
            }));
            0
        }

        fn improve(
            &self,
            _ctx: Ctx<'_>,
            _r: &u32,
            out: &mut usize,
            _node: at_rtree::NodeId,
            members: &[u64],
        ) {
            *out += members.len();
        }

        fn process_exact(&self, ctx: Ctx<'_>, _r: &u32) -> usize {
            ctx.dataset.len()
        }
    }

    impl ComposableService for CountService {
        type Response = usize;

        fn compose(&self, _r: &u32, parts: &[usize]) -> usize {
            parts.iter().sum()
        }
    }

    /// A 3-component fan-out over the usual 90-row toy dataset, with the
    /// caller's choice of service (so the chaos tests can plug in
    /// panicking variants).
    fn fanout_of<S>(make: impl Fn() -> S + Sync) -> FanOutService<S>
    where
        S: ApproximateService<Request = u32> + Send + Sync,
        S::Output: Send,
    {
        let rows: Vec<SparseRow> = (0..90u32)
            .map(|r| SparseRow::from_pairs((0..6).map(|c| (c, ((r + c) % 4) as f64)).collect()))
            .collect();
        let subsets = partition_rows(6, rows, 3).expect("3 components");
        let cfg = SynopsisConfig {
            svd: at_linalg::svd::SvdConfig::default().with_epochs(8),
            size_ratio: 10,
            ..SynopsisConfig::default()
        };
        FanOutService::build(subsets, AggregationMode::Mean, cfg, make)
    }

    fn quick_service() -> FanOutService<CountService> {
        fanout_of(|| CountService)
    }

    #[test]
    fn submitted_requests_match_synchronous_serve() {
        let server = Server::from_service(quick_service(), ServerConfig::default());
        let service = server.service().clone();
        let policies = [
            ExecutionPolicy::Exact,
            ExecutionPolicy::SynopsisOnly,
            ExecutionPolicy::budgeted(1),
            ExecutionPolicy::budgeted(usize::MAX),
        ];
        let mut pending = Vec::new();
        for (i, policy) in policies.iter().cycle().take(24).enumerate() {
            let submitted = Instant::now();
            let ticket = server
                .try_submit_at(i as u32 % 3, *policy, submitted)
                .expect("queue has room");
            pending.push((i as u32 % 3, *policy, submitted, ticket));
        }
        for (req, policy, submitted, ticket) in pending {
            let got = ticket.wait().expect("fulfilled");
            let want = service.serve_at(&req, &policy, submitted);
            assert_eq!(got.response, want.response, "{policy:?}");
            assert_eq!(got.components, want.components, "{policy:?}");
        }
        let stats = server.shutdown();
        assert_eq!(stats.completed, 24);
        assert_eq!(stats.in_flight, 0);
        assert!(stats.batches_dispatched >= 1);
    }

    #[test]
    fn bounded_queue_signals_busy_and_counts_rejections() {
        let server = Server::from_service(
            quick_service(),
            ServerConfig::default()
                .with_queue_capacity(2)
                .with_max_batch(8),
        );
        server.pause();
        let policy = ExecutionPolicy::budgeted(1);
        let a = server.try_submit(0, policy).expect("slot 1");
        let b = server.try_submit(1, policy).expect("slot 2");
        assert_eq!(server.try_submit(2, policy).unwrap_err(), SubmitError::Busy);
        assert_eq!(server.stats().rejected, 1);
        assert_eq!(server.stats().queue_depth, 2);
        server.resume();
        a.wait().expect("served after resume");
        b.wait().expect("served after resume");
    }

    #[test]
    fn queue_wait_counts_against_deadlines() {
        let server = Server::from_service(quick_service(), ServerConfig::default());
        let service = server.service().clone();
        let now = Instant::now();
        let Some(past) = now.checked_sub(Duration::from_secs(60)) else {
            return; // monotonic clock younger than the offset (fresh boot)
        };
        let policy = ExecutionPolicy::deadline(Duration::from_secs(30));
        // Queued past its whole deadline: must degrade to synopsis-only.
        let expired = server.try_submit_at(1, policy, past).unwrap();
        let fresh = server.try_submit_at(1, policy, now).unwrap();
        let expired = expired.wait().unwrap();
        assert_eq!(expired.sets_processed(), 0, "expired request sheds work");
        assert_eq!(
            expired.response,
            service.serve(&1, &ExecutionPolicy::SynopsisOnly).response
        );
        assert!(expired.elapsed >= Duration::from_secs(60));
        let fresh = fresh.wait().unwrap();
        assert!(fresh.sets_processed() > 0, "fresh request improves");
    }

    #[test]
    fn mixed_policy_batches_are_grouped_not_reordered_per_request() {
        let server =
            Server::from_service(quick_service(), ServerConfig::default().with_max_batch(16));
        let service = server.service().clone();
        server.pause(); // force one micro-batch containing all policies
        let submissions: Vec<(u32, ExecutionPolicy)> = (0..12)
            .map(|i| {
                let policy = match i % 3 {
                    0 => ExecutionPolicy::SynopsisOnly,
                    1 => ExecutionPolicy::budgeted(2),
                    _ => ExecutionPolicy::budgeted(usize::MAX),
                };
                (i as u32 % 2, policy)
            })
            .collect();
        let tickets: Vec<_> = submissions
            .iter()
            .map(|&(req, policy)| server.try_submit(req, policy).unwrap())
            .collect();
        server.resume();
        for ((req, policy), ticket) in submissions.iter().zip(tickets) {
            let got = ticket.wait().unwrap();
            let want = service.serve(req, policy);
            assert_eq!(got.response, want.response, "{policy:?}");
            assert_eq!(got.components, want.components, "{policy:?}");
        }
        // All 12 went through one dispatch (three serve_batch_at groups).
        assert_eq!(server.stats().batches_dispatched, 1);
    }

    #[test]
    fn shutdown_drains_queued_requests_without_deadlock() {
        let server = Server::from_service(quick_service(), ServerConfig::default());
        server.pause();
        let tickets: Vec<_> = (0..40)
            .map(|i| {
                server
                    .try_submit(i % 4, ExecutionPolicy::budgeted(1))
                    .unwrap()
            })
            .collect();
        // Shutdown must override the pause and drain all 40.
        let stats = server.shutdown();
        assert_eq!(stats.completed, 40);
        assert_eq!(stats.queue_depth, 0);
        for ticket in tickets {
            assert!(ticket.is_ready());
            ticket.wait().expect("drained, not canceled");
        }
    }

    #[test]
    fn drop_also_drains() {
        let server = Server::from_service(quick_service(), ServerConfig::default());
        server.pause();
        let ticket = server.try_submit(0, ExecutionPolicy::budgeted(1)).unwrap();
        drop(server);
        ticket.wait().expect("drop drains the queue");
    }

    #[test]
    fn telemetry_tracks_queue_waits_and_batches() {
        let server =
            Server::from_service(quick_service(), ServerConfig::default().with_max_batch(4));
        server.pause();
        let tickets: Vec<_> = (0..8)
            .map(|i| server.try_submit(i, ExecutionPolicy::budgeted(1)).unwrap())
            .collect();
        std::thread::sleep(Duration::from_millis(15));
        server.resume();
        for ticket in tickets {
            ticket.wait().unwrap();
        }
        let stats = server.stats();
        assert_eq!(stats.submitted, 8);
        assert_eq!(stats.completed, 8);
        assert!(stats.batches_dispatched >= 2, "max_batch 4 forces >= 2");
        assert!(stats.mean_batch_size() > 1.0);
        assert!(stats.max_queue_depth >= 8);
        assert!(
            stats.queue_wait_max >= Duration::from_millis(15),
            "paused requests measurably waited: {:?}",
            stats.queue_wait_max
        );
        assert!(stats.mean_queue_wait() >= Duration::from_millis(15));
    }

    /// `CountService` whose stage 1 panics on one poison request. Stage 1
    /// runs inside the fan-out's per-leg containment boundary, so this
    /// fault class marks legs failed instead of killing the dispatcher.
    struct PanickyService;

    impl ApproximateService for PanickyService {
        type Request = u32;
        type Output = usize;

        fn process_synopsis(&self, ctx: Ctx<'_>, r: &u32, corr: &mut Vec<Correlation>) -> usize {
            assert_ne!(*r, 666, "poison request");
            CountService.process_synopsis(ctx, r, corr)
        }

        fn improve(
            &self,
            ctx: Ctx<'_>,
            r: &u32,
            out: &mut usize,
            node: at_rtree::NodeId,
            members: &[u64],
        ) {
            CountService.improve(ctx, r, out, node, members);
        }

        fn process_exact(&self, ctx: Ctx<'_>, r: &u32) -> usize {
            CountService.process_exact(ctx, r)
        }
    }

    impl ComposableService for PanickyService {
        type Response = usize;

        fn compose(&self, _r: &u32, parts: &[usize]) -> usize {
            parts.iter().sum()
        }
    }

    /// `CountService` whose *compose* panics on one poison request.
    /// Compose runs on the dispatcher's own stack, outside the fan-out's
    /// per-leg containment — the fault class that actually kills the
    /// dispatcher thread and exercises the supervisor.
    struct ComposePanicService;

    impl ApproximateService for ComposePanicService {
        type Request = u32;
        type Output = usize;

        fn process_synopsis(&self, ctx: Ctx<'_>, r: &u32, corr: &mut Vec<Correlation>) -> usize {
            CountService.process_synopsis(ctx, r, corr)
        }

        fn improve(
            &self,
            ctx: Ctx<'_>,
            r: &u32,
            out: &mut usize,
            node: at_rtree::NodeId,
            members: &[u64],
        ) {
            CountService.improve(ctx, r, out, node, members);
        }

        fn process_exact(&self, ctx: Ctx<'_>, r: &u32) -> usize {
            CountService.process_exact(ctx, r)
        }
    }

    impl ComposableService for ComposePanicService {
        type Response = usize;

        fn compose(&self, r: &u32, parts: &[usize]) -> usize {
            assert_ne!(*r, 666, "poison compose");
            parts.iter().sum()
        }
    }

    #[test]
    fn contained_component_panics_keep_the_dispatcher_alive() {
        let server = Server::from_service(
            fanout_of(|| PanickyService),
            ServerConfig::default().with_max_batch(1),
        );
        let service = server.service().clone();
        let policy = ExecutionPolicy::budgeted(1);
        // Every component's stage-1 leg dies on the poison request, but
        // each leg is contained: the ticket resolves with a response
        // composed of zero surviving parts instead of being canceled.
        let got = server
            .try_submit(666, policy)
            .unwrap()
            .wait()
            .expect("fulfilled, not canceled");
        assert_eq!(got.components_failed, vec![0, 1, 2]);
        assert_eq!(got.response, 0, "composed from zero surviving parts");
        assert!(!got.is_complete());
        // The dispatcher never died: the next request serves normally
        // (one failure is below the breaker threshold, so no leg skips).
        let fine = server.try_submit(1, policy).unwrap().wait().unwrap();
        assert!(fine.is_complete());
        assert_eq!(fine.response, service.serve(&1, &policy).response);
        let stats = server.shutdown();
        assert_eq!(stats.dispatcher_restarts, 0, "contained, not crashed");
        assert!(!stats.stopped);
    }

    #[test]
    fn stats_expose_open_breakers() {
        let server = Server::from_service(
            fanout_of(|| PanickyService),
            ServerConfig::default().with_max_batch(1),
        );
        let policy = ExecutionPolicy::budgeted(1);
        // Three consecutive failing rounds reach the default breaker
        // threshold on every component.
        for _ in 0..3 {
            let got = server.try_submit(666, policy).unwrap().wait().unwrap();
            assert_eq!(got.components_failed.len(), 3);
        }
        let load = server.stats().load;
        assert_eq!(load.components_total, 3);
        assert_eq!(
            load.components_open, 3,
            "three consecutive failures trip every breaker"
        );
        server.shutdown();
    }

    #[test]
    fn supervisor_respawns_dispatcher_and_queued_work_survives() {
        let server = Server::from_service(
            fanout_of(|| ComposePanicService),
            ServerConfig::default()
                .with_max_batch(1)
                .with_restart_backoff(Duration::from_micros(100)),
        );
        let service = server.service().clone();
        let policy = ExecutionPolicy::budgeted(1);
        server.pause();
        // Three poison batches interleaved with healthy work: each poison
        // compose kills the dispatcher on its own stack, the supervisor
        // respawns it, and the still-queued entries are served untouched.
        let reqs = [666u32, 1, 666, 2, 666, 0];
        let tickets: Vec<_> = reqs
            .iter()
            .map(|&r| server.try_submit(r, policy).expect("room"))
            .collect();
        server.resume();
        for (&r, ticket) in reqs.iter().zip(tickets) {
            if r == 666 {
                assert!(ticket.wait().is_err(), "poison batch ticket cancels");
            } else {
                let got = ticket.wait().expect("queued work survives restarts");
                assert_eq!(got.response, service.serve(&r, &policy).response);
            }
        }
        // Still fully operational after surviving three dispatcher deaths.
        let got = server.try_submit(2, policy).unwrap().wait().unwrap();
        assert_eq!(got.response, service.serve(&2, &policy).response);
        let stats = server.shutdown();
        assert_eq!(stats.dispatcher_restarts, 3, "one respawn per poison");
        assert!(!stats.stopped);
        assert_eq!(stats.completed, 4);
    }

    #[test]
    fn restart_budget_exhausted_stops_the_server_terminally() {
        let server = Server::from_service(
            fanout_of(|| ComposePanicService),
            ServerConfig::default()
                .with_max_batch(2)
                .with_max_restarts(0),
        );
        let policy = ExecutionPolicy::budgeted(1);
        server.pause();
        // First micro-batch (max_batch 2) carries the poison compose;
        // with a zero restart budget the supervisor gives up on the first
        // crash, cancels the queued rest, and stops terminally.
        let tickets: Vec<_> = [0u32, 666, 1, 2, 3]
            .into_iter()
            .map(|r| server.try_submit(r, policy).expect("room"))
            .collect();
        server.resume();
        for ticket in tickets {
            assert!(
                ticket.wait().is_err(),
                "every ticket is canceled, none blocks forever"
            );
        }
        // The stopped server must refuse work — terminally, not Busy.
        assert_eq!(
            server.try_submit(7, policy).unwrap_err(),
            SubmitError::Stopped
        );
        assert_eq!(
            server.submit(7, policy).unwrap_err(),
            SubmitError::Stopped,
            "blocking submit must not hang on a stopped server"
        );
        assert!(server.is_stopped());
        let stats = server.stats();
        assert!(stats.stopped);
        assert_eq!(stats.dispatcher_restarts, 0, "budget 0: no respawn");
        assert_eq!(server.queue_depth(), 0, "queued entries were cleared");
    }

    /// Regression for the stopped-server wakeup race: the dispatcher can
    /// die *between* draining a batch (freeing queue room) and notifying
    /// `space`. A submitter blocked in `submit` on the then-full queue
    /// would sleep on freed room — and once the supervisor gives up and
    /// stops the server, sleep forever. The supervisor now wakes both
    /// condvars after every crash, so blocked producers promptly observe
    /// either the freed room or the terminal stop.
    #[test]
    fn blocked_submitters_wake_when_the_server_stops() {
        let server = Arc::new(Server::from_service(
            fanout_of(|| ComposePanicService),
            ServerConfig::default()
                .with_queue_capacity(1)
                .with_max_batch(1)
                .with_max_restarts(0),
        ));
        let policy = ExecutionPolicy::budgeted(1);
        server.pause();
        // Fill the single queue slot with the poison request.
        let poison = server.try_submit(666, policy).expect("slot");
        // Block several producers in `submit` on the full queue.
        let (tx, rx) = std::sync::mpsc::channel();
        for i in 0..4u32 {
            let server = Arc::clone(&server);
            let tx = tx.clone();
            std::thread::spawn(move || {
                let _ = tx.send(server.submit(i, policy));
            });
        }
        drop(tx);
        std::thread::sleep(Duration::from_millis(50)); // let them block
        server.resume();
        // The poison compose kills the dispatcher after the drain; with a
        // zero restart budget the server stops terminally.
        assert!(poison.wait().is_err(), "poison ticket cancels");
        for _ in 0..4 {
            let outcome = rx
                .recv_timeout(Duration::from_secs(10))
                .expect("a blocked submitter must wake promptly, not hang");
            match outcome {
                // Woke into the freed slot before the stop landed: its
                // queued ticket is canceled by the stop.
                Ok(ticket) => assert!(ticket.wait().is_err(), "stop cancels queued tickets"),
                Err(e) => assert_eq!(e, SubmitError::Stopped),
            }
        }
        assert!(server.is_stopped());
    }

    #[test]
    #[should_panic(expected = "queue capacity")]
    fn zero_capacity_is_a_construction_bug() {
        let _ = Server::from_service(
            quick_service(),
            ServerConfig::default().with_queue_capacity(0),
        );
    }

    #[test]
    fn responses_report_the_requested_policy_without_control() {
        let server = Server::from_service(quick_service(), ServerConfig::default());
        let policy = ExecutionPolicy::budgeted(2);
        let got = server.try_submit(1, policy).unwrap().wait().unwrap();
        assert_eq!(got.policy_applied, policy);
        assert_eq!(server.stats().shed, 0);
    }

    /// Deterministic overload: pause the server, let a burst wait past the
    /// controller's wait budget, resume — the first rounds must degrade.
    #[test]
    fn ladder_controller_degrades_a_queued_burst_and_recovers() {
        let wait_budget = Duration::from_millis(20);
        let controller = LadderController::new(LadderConfig {
            step_fraction: 1.0, // degrade the whole round while overloaded
            max_level: 3,       // never reach shed_level: degradation only
            ..LadderConfig::for_deadline(wait_budget)
        });
        let server = Server::with_controller(
            Arc::new(quick_service()),
            ServerConfig::default()
                .with_max_batch(16)
                .with_stats_window(32),
            controller,
        );
        let requested = ExecutionPolicy::deadline(Duration::from_secs(30));

        server.pause();
        let tickets: Vec<_> = (0..32)
            .map(|i| server.try_submit(i % 3, requested).unwrap())
            .collect();
        std::thread::sleep(3 * wait_budget); // the queue wait blows the budget
        server.resume();
        let responses: Vec<_> = tickets
            .into_iter()
            .map(|t| t.wait().expect("degraded, not shed at level 1"))
            .collect();
        let degraded = responses
            .iter()
            .filter(|r| r.policy_applied != requested)
            .count();
        assert!(
            degraded > 0,
            "a burst waiting 3x the budget must trip the controller"
        );
        for r in &responses {
            assert!(
                r.policy_applied.cost_rank() <= requested.cost_rank(),
                "control only ever moves down the ladder"
            );
            if r.policy_applied != requested {
                assert!(
                    r.policy_applied.is_clock_free(),
                    "degraded rungs are clock-free: {:?}",
                    r.policy_applied
                );
            }
        }

        // Calm traffic: served one at a time, waits are ~0; once the burst
        // slides out of the 32-sample window the level decays to 0 and
        // requests run under the requested policy again.
        let mut recovered = false;
        for i in 0..64 {
            let got = server.try_submit(i % 3, requested).unwrap().wait().unwrap();
            if got.policy_applied == requested {
                recovered = true;
                break;
            }
        }
        assert!(recovered, "hysteresis must exit once the burst subsides");
        server.shutdown();
    }

    /// At `shed_level`, the degraded fraction is dropped: tickets report
    /// `Canceled`, the shed counter owns them, and in-flight still drains
    /// to zero.
    #[test]
    fn shed_requests_cancel_tickets_and_are_counted() {
        let wait_budget = Duration::from_millis(10);
        let controller = LadderController::new(LadderConfig {
            step_fraction: 1.0,
            shed_level: 1, // shed immediately on the first overloaded round
            ..LadderConfig::for_deadline(wait_budget)
        });
        let server = Server::with_controller(
            Arc::new(quick_service()),
            ServerConfig::default()
                .with_max_batch(64)
                .with_stats_window(64),
            controller,
        );
        server.pause();
        let tickets: Vec<_> = (0..24)
            .map(|i| {
                server
                    .try_submit(i % 3, ExecutionPolicy::budgeted(2))
                    .unwrap()
            })
            .collect();
        std::thread::sleep(4 * wait_budget);
        server.resume();
        let (served, shed): (Vec<_>, Vec<_>) = tickets
            .into_iter()
            .map(Ticket::wait)
            .partition(Result::is_ok);
        assert!(!shed.is_empty(), "the overloaded round must shed");
        let stats = server.shutdown();
        assert_eq!(stats.shed, shed.len() as u64);
        assert_eq!(stats.completed, served.len() as u64);
        assert_eq!(stats.in_flight, 0, "shed requests are not in flight");
        assert_eq!(stats.completed + stats.shed, 24);
    }
}

//! Accuracy replay: turn the simulator's per-component processing budgets
//! into real accuracy numbers by running the actual services.
//!
//! For each sampled simulated request, the simulator reports either how
//! many ranked sets each component processed (AccuracyTrader) or which
//! components beat the deadline (partial execution). This module replays
//! those decisions against the real deployments of
//! [`crate::deployments`] and evaluates RMSE / top-10 overlap exactly as
//! the paper defines them (§4.1).

use std::time::Instant;

use at_core::{ComposableService, ExecutionPolicy};
use at_recommender::{accuracy_loss_pct as rec_loss_pct, rmse, CfService};
use at_search::{accuracy_loss_pct as search_loss_pct, topk_overlap};
use at_sim::RequestSample;
use rayon::prelude::*;

use crate::deployments::{RecDeployment, SearchDeployment};

/// How much work each real component gets for one replayed request.
#[derive(Clone, Debug)]
pub enum Budget<'a> {
    /// Exact processing everywhere (the baseline).
    Exact,
    /// AccuracyTrader: per simulated component, ranked sets processed.
    Sets {
        /// Sets processed per simulated component.
        sets: &'a [usize],
        /// The simulator's total ranked-set count (its cost model's
        /// `n_sets`); real components' synopsis sizes differ, so budgets
        /// are rescaled proportionally.
        sim_total: usize,
        /// `i_max` as a fraction of the total sets (the paper's search
        /// setting is 0.4), applied per real component.
        imax_frac: Option<f64>,
    },
    /// Partial execution: per simulated component, made-deadline flags.
    Mask(&'a [bool]),
}

/// Rescale a simulated set budget onto a real component with `real_total`
/// ranked sets, preserving the *fraction* of ranked data processed.
fn scale_budget(k_sim: usize, sim_total: usize, real_total: usize) -> usize {
    if sim_total == 0 {
        return real_total;
    }
    if k_sim >= sim_total {
        return real_total;
    }
    // Round to nearest; a nonzero simulated budget never scales to zero.
    let scaled = (k_sim * real_total + sim_total / 2) / sim_total;
    if k_sim > 0 {
        scaled.max(1)
    } else {
        0
    }
}

/// Real component `i` takes the budget the simulator assigned to simulated
/// component `i` (the simulated cluster is at least as wide as the real
/// deployment, so indexing wraps only in degenerate test setups).
fn mapped<T: Copy>(values: &[T], component: usize) -> T {
    values[component % values.len()]
}

/// The [`ExecutionPolicy`] simulated component `i`'s record implies for a
/// real component with `real_total` ranked sets; `None` = the component is
/// skipped entirely (partial execution past the deadline).
fn policy_for(budget: &Budget<'_>, component: usize, real_total: usize) -> Option<ExecutionPolicy> {
    match budget {
        Budget::Exact => Some(ExecutionPolicy::Exact),
        Budget::Sets {
            sets,
            sim_total,
            imax_frac,
        } => {
            let k = scale_budget(mapped(sets, component), *sim_total, real_total);
            let imax = imax_frac.map(|f| ExecutionPolicy::imax_for_fraction(real_total, f));
            Some(ExecutionPolicy::Budgeted { sets: k, imax })
        }
        Budget::Mask(mask) => mapped(mask, component).then_some(ExecutionPolicy::Exact),
    }
}

/// Replay one request against the recommender deployment and return the
/// `(prediction, actual)` pairs it contributes to the RMSE population.
///
/// Heterogeneous per-component budgets (`Budget::Sets`/`Exact`) go through
/// [`FanOutService::serve_with`](at_core::FanOutService::serve_with) — the
/// end-to-end path with one policy per component. `Budget::Mask` keeps the
/// manual component loop because a skipped recommender component must be
/// *omitted* from composition entirely (its synopsis estimate would still
/// shift the prediction), which no `ExecutionPolicy` expresses.
fn rec_predict(deployment: &RecDeployment, req_idx: usize, budget: &Budget<'_>) -> Vec<(f64, f64)> {
    let request = &deployment.requests[req_idx];
    let preds = match budget {
        Budget::Mask(_) => {
            let parts: Vec<_> = deployment
                .service
                .components()
                .iter()
                .enumerate()
                .filter_map(|(i, c)| {
                    let policy = policy_for(budget, i, c.store().synopsis().len())?;
                    Some(c.execute(&request.active, &policy, Instant::now()).output)
                })
                .collect();
            if parts.is_empty() {
                // Every component skipped: fall back to the user-mean baseline.
                vec![request.active.mean_rating(); request.actual.len()]
            } else {
                CfService.compose(&request.active, &parts)
            }
        }
        _ => {
            deployment
                .service
                .serve_with(&request.active, |i| {
                    let real_total = deployment.service.components()[i].store().synopsis().len();
                    policy_for(budget, i, real_total).expect("Sets/Exact never skip")
                })
                .response
        }
    };
    preds
        .into_iter()
        .zip(request.actual.iter().copied())
        .collect()
}

/// RMSE of the recommender deployment over `samples` under `budget_of`
/// (which picks each sample's budget from its simulator record).
pub fn rec_rmse(
    deployment: &RecDeployment,
    samples: &[RequestSample],
    budget_of: impl Fn(&RequestSample) -> Budget<'_> + Sync,
) -> f64 {
    let pairs: Vec<(f64, f64)> = samples
        .par_iter()
        .enumerate()
        .flat_map_iter(|(i, s)| {
            let req_idx = i % deployment.requests.len();
            rec_predict(deployment, req_idx, &budget_of(s))
        })
        .collect();
    assert!(!pairs.is_empty(), "no prediction pairs to score");
    let (p, a): (Vec<f64>, Vec<f64>) = pairs.into_iter().unzip();
    rmse(&p, &a)
}

/// The paper's Table-2 cell: accuracy-loss % of a technique vs exact.
pub fn rec_accuracy_loss(
    deployment: &RecDeployment,
    samples: &[RequestSample],
    budget_of: impl Fn(&RequestSample) -> Budget<'_> + Sync,
) -> f64 {
    let exact = rec_rmse(deployment, samples, |_| Budget::Exact);
    let approx = rec_rmse(deployment, samples, budget_of);
    rec_loss_pct(exact, approx)
}

/// Replay one query against the search deployment and return its top-10
/// overlap with the exact top-10.
///
/// Both sides ride
/// [`FanOutService::serve_with`](at_core::FanOutService::serve_with) /
/// `serve`: a component skipped by partial execution (`Budget::Mask`)
/// degrades to `SynopsisOnly`, which for search *is* the empty top-k, so
/// surviving components keep their slice position in composition (document
/// ids are namespaced by position).
fn search_overlap_one(deployment: &SearchDeployment, req_idx: usize, budget: &Budget<'_>) -> f64 {
    let request = &deployment.requests[req_idx];
    let policies: Vec<ExecutionPolicy> = (0..deployment.service.len())
        .map(|i| {
            let real_total = deployment.service.components()[i].store().synopsis().len();
            policy_for(budget, i, real_total).unwrap_or(ExecutionPolicy::SynopsisOnly)
        })
        .collect();
    let exact = deployment.service.serve(request, &ExecutionPolicy::Exact);
    let exact_ids = exact.response.doc_ids();
    // An all-Exact budget replays the baseline itself: reuse the exact
    // response instead of running process_exact on every component twice.
    if policies.iter().all(|p| matches!(p, ExecutionPolicy::Exact)) {
        return topk_overlap(&exact_ids, &exact_ids);
    }
    let approx = deployment.service.serve_with(request, |i| policies[i]);
    topk_overlap(&exact_ids, &approx.response.doc_ids())
}

/// Mean top-10 overlap over `samples` under `budget_of`.
pub fn search_overlap(
    deployment: &SearchDeployment,
    samples: &[RequestSample],
    budget_of: impl Fn(&RequestSample) -> Budget<'_> + Sync,
) -> f64 {
    assert!(!samples.is_empty(), "no samples to score");
    let total: f64 = samples
        .par_iter()
        .enumerate()
        .map(|(i, s)| {
            let req_idx = i % deployment.requests.len();
            search_overlap_one(deployment, req_idx, &budget_of(s))
        })
        .sum();
    total / samples.len() as f64
}

/// The search accuracy-loss %: `100 × (1 − mean overlap)`.
pub fn search_accuracy_loss(
    deployment: &SearchDeployment,
    samples: &[RequestSample],
    budget_of: impl Fn(&RequestSample) -> Budget<'_> + Sync,
) -> f64 {
    search_loss_pct(search_overlap(deployment, samples, budget_of))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deployments::{build_recommender, build_search, DeployScale};
    use at_sim::RequestSample;

    fn fake_samples(n: usize, sets: usize, n_comp: usize, made: bool) -> Vec<RequestSample> {
        (0..n)
            .map(|i| RequestSample {
                request_idx: i,
                arrival_s: i as f64,
                sets_processed: Some(vec![sets; n_comp]),
                made_deadline: Some(vec![made; n_comp]),
            })
            .collect()
    }

    #[test]
    fn exact_replay_has_zero_loss() {
        let d = build_recommender(DeployScale::quick());
        let samples = fake_samples(6, 0, 108, true);
        let loss = rec_accuracy_loss(&d, &samples, |_| Budget::Exact);
        assert_eq!(loss, 0.0);
    }

    #[test]
    fn full_budget_equals_exact_rmse() {
        let d = build_recommender(DeployScale::quick());
        let samples = fake_samples(6, usize::MAX, 108, true);
        let loss = rec_accuracy_loss(&d, &samples, |s| Budget::Sets {
            sets: s.sets_processed.as_ref().unwrap(),
            sim_total: 30,
            imax_frac: None,
        });
        assert!(loss < 1e-6, "full-budget AT must match exact, loss {loss}");
    }

    #[test]
    fn losses_are_bounded_and_full_budget_is_lossless() {
        // Accuracy loss vs. the exact baseline is not strictly monotone in
        // the set budget (aggregation regularizes, so a partially improved
        // result can drift from both exact and actual) — but it must stay
        // finite/bounded at every budget and vanish at full budget.
        let d = build_recommender(DeployScale::quick());
        for sets in [0usize, 1, 3, 8, usize::MAX] {
            let samples = fake_samples(6, sets, 108, true);
            let loss = rec_accuracy_loss(&d, &samples, |s| Budget::Sets {
                sets: s.sets_processed.as_ref().unwrap(),
                sim_total: 30,
                imax_frac: None,
            });
            assert!(loss.is_finite() && loss >= 0.0, "sets={sets}: loss {loss}");
            assert!(loss < 150.0, "sets={sets}: implausible loss {loss}");
        }
        let full = fake_samples(6, usize::MAX, 108, true);
        let loss_full = rec_accuracy_loss(&d, &full, |s| Budget::Sets {
            sets: s.sets_processed.as_ref().unwrap(),
            sim_total: 30,
            imax_frac: None,
        });
        assert!(
            loss_full < 1e-6,
            "full budget must equal exact: {loss_full}"
        );
    }

    #[test]
    fn partial_all_skipped_is_large_loss() {
        let d = build_recommender(DeployScale::quick());
        let none = fake_samples(6, 0, 108, false);
        let all = fake_samples(6, 0, 108, true);
        let loss_none = rec_accuracy_loss(&d, &none, |s| {
            Budget::Mask(s.made_deadline.as_ref().unwrap())
        });
        let loss_all = rec_accuracy_loss(&d, &all, |s| {
            Budget::Mask(s.made_deadline.as_ref().unwrap())
        });
        assert_eq!(loss_all, 0.0, "no skipping = exact");
        assert!(loss_none > loss_all, "skipping everything must hurt");
    }

    #[test]
    fn search_exact_overlap_is_one() {
        let d = build_search(DeployScale::quick());
        let samples = fake_samples(8, 0, 108, true);
        let o = search_overlap(&d, &samples, |_| Budget::Exact);
        assert!((o - 1.0).abs() < 1e-12);
        assert_eq!(search_accuracy_loss(&d, &samples, |_| Budget::Exact), 0.0);
    }

    #[test]
    fn search_overlap_grows_with_sets() {
        let d = build_search(DeployScale::quick());
        let lo = fake_samples(8, 1, 108, true);
        let hi = fake_samples(8, usize::MAX, 108, true);
        let o_lo = search_overlap(&d, &lo, |s| Budget::Sets {
            sets: s.sets_processed.as_ref().unwrap(),
            sim_total: 30,
            imax_frac: None,
        });
        let o_hi = search_overlap(&d, &hi, |s| Budget::Sets {
            sets: s.sets_processed.as_ref().unwrap(),
            sim_total: 30,
            imax_frac: None,
        });
        assert!(o_hi >= o_lo);
        assert!((o_hi - 1.0).abs() < 1e-9, "all sets = exact, got {o_hi}");
    }

    /// The bench's heterogeneous-budget replay rides `serve_with`; its
    /// per-component policies must drive each component exactly like the
    /// manual `Component::execute` loop the replay used before.
    #[test]
    fn serve_with_replay_equals_manual_component_loop() {
        let d = build_recommender(DeployScale::quick());
        let budget = Budget::Sets {
            sets: &[1, 3, 0, 7, 2, 5],
            sim_total: 30,
            imax_frac: Some(0.4),
        };
        for request in d.requests.iter().take(4) {
            let policies: Vec<ExecutionPolicy> = (0..d.service.len())
                .map(|i| {
                    policy_for(
                        &budget,
                        i,
                        d.service.components()[i].store().synopsis().len(),
                    )
                    .expect("Sets never skips")
                })
                .collect();
            let served = d.service.serve_with(&request.active, |i| policies[i]);
            let manual: Vec<_> = d
                .service
                .components()
                .iter()
                .zip(&policies)
                .map(|(c, p)| c.execute(&request.active, p, Instant::now()))
                .collect();
            for (got, want) in served.components.iter().zip(&manual) {
                assert_eq!(got.sets_processed, want.sets_processed);
                assert_eq!(got.sets_total, want.sets_total);
                assert_eq!(got.sets_skipped, want.sets_skipped);
            }
            let parts: Vec<_> = manual.into_iter().map(|o| o.output).collect();
            let want_preds = CfService.compose(&request.active, &parts);
            assert_eq!(served.response, want_preds);
        }
    }

    #[test]
    fn search_partial_mask_drops_components() {
        let d = build_search(DeployScale::quick());
        let none = fake_samples(8, 0, 108, false);
        let loss = search_accuracy_loss(&d, &none, |s| {
            Budget::Mask(s.made_deadline.as_ref().unwrap())
        });
        assert!(
            (loss - 100.0).abs() < 1e-9,
            "all skipped = total loss, {loss}"
        );
    }
}

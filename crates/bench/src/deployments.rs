//! Builds the two evaluated service deployments at configurable scale.
//!
//! The paper partitions each service's input data over 108 components.
//! The latency side of every experiment runs in `at-sim` at full 108-
//! component scale; the *accuracy* side replays the simulator's per-
//! component processing budgets against a real (smaller) deployment built
//! here, mapping simulated component `i` onto real component
//! `i % n_components`.

use at_core::{partition_rows, Component, FanOutService};
use at_linalg::svd::SvdConfig;
use at_recommender::{rating_matrix, ActiveUser, CfService};
use at_search::{SearchRequest, SearchService};
use at_synopsis::{AggregationMode, SparseRow, SynopsisConfig};
use at_workloads::{Corpus, CorpusConfig, QueryGenerator, RatingsConfig, RatingsDataset};

/// Scale of the accuracy-side deployment.
#[derive(Clone, Copy, Debug)]
pub struct DeployScale {
    /// Real parallel components.
    pub n_components: usize,
    /// Users (recommender) / pages (search) per component.
    pub rows_per_component: usize,
    /// Items (recommender) / vocabulary (search ÷ 10) columns.
    pub n_columns: usize,
    /// Evaluation requests to generate.
    pub n_requests: usize,
    /// Seed.
    pub seed: u64,
}

impl DeployScale {
    /// Quick scale for tests and criterion benches.
    pub fn quick() -> Self {
        DeployScale {
            n_components: 6,
            rows_per_component: 150,
            n_columns: 120,
            n_requests: 24,
            seed: 7,
        }
    }

    /// Fuller scale for the `repro` binary.
    pub fn full() -> Self {
        DeployScale {
            n_components: 12,
            rows_per_component: 400,
            n_columns: 240,
            n_requests: 60,
            seed: 7,
        }
    }
}

/// A recommender evaluation request with ground truth.
#[derive(Clone, Debug)]
pub struct RecRequest {
    /// The active user (80% profile).
    pub active: ActiveUser,
    /// Actual ratings of the target items (holdout 20%), parallel to
    /// `active.targets`.
    pub actual: Vec<f64>,
}

/// The CF deployment plus its evaluation workload.
pub struct RecDeployment {
    /// The fan-out service (one synopsis per component).
    pub service: FanOutService<CfService>,
    /// Evaluation requests with held-out ground truth.
    pub requests: Vec<RecRequest>,
}

/// Build the recommender deployment: generate MovieLens-like ratings,
/// 80/20-split each evaluation user's ratings, partition all users across
/// components, and run the offline synopsis pipeline on each subset.
pub fn build_recommender(scale: DeployScale) -> RecDeployment {
    let n_users = scale.n_components * scale.rows_per_component;
    let data = RatingsDataset::generate(RatingsConfig {
        n_users,
        n_items: scale.n_columns,
        ratings_per_user: (scale.n_columns / 3).max(10),
        // Lower noise strengthens the CF signal, so skipping components
        // costs real accuracy (the paper's exact CF is far better than the
        // user-mean fallback).
        noise: 0.3,
        seed: scale.seed,
        ..RatingsConfig::default()
    });
    let (train, holdout) = data.holdout_split(0.8, scale.seed ^ 0x51);

    // Evaluation requests: the first n_requests users act as active users;
    // their TRAIN ratings form the profile and their holdout ratings are
    // the prediction targets.
    let mut requests = Vec::with_capacity(scale.n_requests);
    for user in 0..scale.n_requests as u32 {
        let profile: Vec<(u32, f64)> = train
            .iter()
            .filter(|r| r.user == user)
            .map(|r| (r.item, r.stars))
            .collect();
        let mut held: Vec<(u32, f64)> = holdout
            .iter()
            .filter(|r| r.user == user)
            .map(|r| (r.item, r.stars))
            .collect();
        held.sort_by_key(|&(i, _)| i);
        if held.is_empty() || profile.len() < 4 {
            continue;
        }
        let targets: Vec<u32> = held.iter().map(|&(i, _)| i).collect();
        let actual: Vec<f64> = held.iter().map(|&(_, s)| s).collect();
        requests.push(RecRequest {
            active: ActiveUser::new(SparseRow::from_pairs(profile), targets),
            actual,
        });
    }

    // Neighbourhood matrix: every user's TRAIN ratings (the active users'
    // holdout items stay unseen, as in the paper's weight-calculation
    // setup).
    let matrix = rating_matrix(n_users, scale.n_columns, &train);
    let mut rows = Vec::with_capacity(n_users);
    for id in matrix.ids() {
        rows.push(matrix.row(id).clone());
    }
    let subsets = partition_rows(scale.n_columns, rows, scale.n_components)
        .expect("deployment scale has >= 1 component");
    let config = SynopsisConfig {
        svd: SvdConfig::default().with_epochs(30).with_seed(scale.seed),
        size_ratio: 12,
        ..SynopsisConfig::default()
    };
    let service = FanOutService::build(subsets, AggregationMode::Mean, config, || CfService);
    RecDeployment { service, requests }
}

/// The search deployment plus its evaluation workload.
pub struct SearchDeployment {
    /// The fan-out service (one inverted index + synopsis per component).
    pub service: FanOutService<SearchService>,
    /// Evaluation queries.
    pub requests: Vec<SearchRequest>,
}

/// Build the search deployment: generate a Sogou-like corpus, partition
/// pages across components, index each subset, and run the offline
/// synopsis pipeline with merge aggregation.
pub fn build_search(scale: DeployScale) -> SearchDeployment {
    let corpus = Corpus::generate(CorpusConfig {
        n_docs: scale.n_components * scale.rows_per_component,
        vocab: scale.n_columns * 10,
        n_topics: (scale.n_columns / 10).clamp(4, 40),
        seed: scale.seed,
        ..CorpusConfig::default()
    });
    let rows: Vec<SparseRow> = corpus
        .docs
        .iter()
        .map(|d| SparseRow::from_pairs(d.terms.clone()))
        .collect();
    let subsets = partition_rows(corpus.config.vocab, rows, scale.n_components)
        .expect("deployment scale has >= 1 component");
    let config = SynopsisConfig {
        svd: SvdConfig::default().with_epochs(30).with_seed(scale.seed),
        size_ratio: 12,
        ..SynopsisConfig::default()
    };
    let components: Vec<Component<SearchService>> = subsets
        .into_iter()
        .map(|subset| {
            let service = SearchService::build(&subset, 10);
            Component::build(subset, AggregationMode::Merge, config, service).0
        })
        .collect();
    let service = FanOutService::from_components(components);

    let mut generator = QueryGenerator::new(&corpus, scale.seed ^ 0x9e);
    let requests = generator
        .batch(&corpus, scale.n_requests)
        .iter()
        .map(SearchRequest::from)
        .collect();
    SearchDeployment { service, requests }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recommender_deployment_shape() {
        let d = build_recommender(DeployScale::quick());
        assert_eq!(d.service.len(), 6);
        assert!(!d.requests.is_empty());
        for r in &d.requests {
            assert_eq!(r.active.targets.len(), r.actual.len());
            assert!(r.actual.iter().all(|s| (1.0..=5.0).contains(s)));
        }
    }

    #[test]
    fn search_deployment_shape() {
        let d = build_search(DeployScale::quick());
        assert_eq!(d.service.len(), 6);
        assert_eq!(d.requests.len(), 24);
        for c in d.service.components() {
            assert!(c.store().synopsis().len() > 1);
        }
    }
}

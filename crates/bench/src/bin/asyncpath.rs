//! Async serving-path benchmarks → `BENCH_async.json`.
//!
//! ```text
//! asyncpath [--quick] [--out PATH]
//! ```
//!
//! Replays one zipf-skewed request mix against the recommender deployment
//! under `Budgeted{sets: 5}` two ways and records throughput (req/s) and
//! p99 latency (ms) for each:
//!
//! * `sequential` — the baseline: `FanOutService::serve`, one request at a
//!   time from one caller (what a process without the async front end
//!   does; no queueing, so its p99 is also its best case).
//! * `async_inflight_{1,64,2048}` — the same mix through an
//!   `at_server::Server` with a sliding window of that many in-flight
//!   submissions; the dispatcher drains micro-batches of up to
//!   `max_batch` requests, so higher in-flight counts amortize fan-outs
//!   and collapse the mix's duplicate hot requests.
//! * `async_inflight_2048_batch{1,16}` — the micro-batch-size sweep at
//!   peak in-flight: `max_batch = 1` isolates pure queueing overhead
//!   (every request its own fan-out), 16 a mid-size batch.
//!
//! Async latency is `ServiceResponse::elapsed` measured from the enqueue
//! instant, so it **includes queue wait** — the honest number a caller
//! sees. The JSON is flat and hand-written (no serde in the closure):
//! one object per entry with throughput, p99, and the throughput speedup
//! over `sequential`.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use at_bench::deployments::{build_recommender, DeployScale};
use at_core::ExecutionPolicy;
use at_recommender::ActiveUser;
use at_server::{Server, ServerConfig};
use at_workloads::Zipf;
use rand::{rngs::SmallRng, SeedableRng};

struct Entry {
    name: String,
    in_flight: usize,
    max_batch: usize,
    throughput_rps: f64,
    p99_ms: f64,
}

use at_bench::p99_latency_ms as p99_ms;

/// Serve `mix` one request at a time, returning (throughput, p99).
fn run_sequential(
    service: &at_core::FanOutService<at_recommender::CfService>,
    mix: &[ActiveUser],
    policy: &ExecutionPolicy,
) -> (f64, f64) {
    let mut latencies = Vec::with_capacity(mix.len());
    let start = Instant::now();
    for req in mix {
        let resp = service.serve(req, policy);
        latencies.push(resp.elapsed);
    }
    let wall = start.elapsed().as_secs_f64();
    (mix.len() as f64 / wall, p99_ms(&mut latencies))
}

/// Replay `mix` through a fresh server, keeping a sliding window of
/// `in_flight` outstanding tickets, returning (throughput, p99).
fn run_async(
    service: &Arc<at_core::FanOutService<at_recommender::CfService>>,
    mix: &[ActiveUser],
    policy: &ExecutionPolicy,
    in_flight: usize,
    max_batch: usize,
) -> (f64, f64) {
    let server = Server::new(
        service.clone(),
        ServerConfig::default()
            .with_queue_capacity(in_flight.max(64) * 2)
            .with_max_batch(max_batch),
    );
    let mut latencies = Vec::with_capacity(mix.len());
    let mut window: std::collections::VecDeque<
        at_server::Ticket<at_server::Response<at_recommender::CfService>>,
    > = std::collections::VecDeque::with_capacity(in_flight);
    let start = Instant::now();
    for req in mix {
        if window.len() >= in_flight {
            let ticket = window.pop_front().unwrap();
            latencies.push(ticket.wait().expect("fulfilled").elapsed);
        }
        window.push_back(server.submit(req.clone(), *policy).expect("accepting"));
    }
    for ticket in window {
        latencies.push(ticket.wait().expect("fulfilled").elapsed);
    }
    let wall = start.elapsed().as_secs_f64();
    server.shutdown();
    (mix.len() as f64 / wall, p99_ms(&mut latencies))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_async.json".to_string());

    // The 2048-in-flight sweep point needs at least that many requests in
    // the mix; full scale replays a longer stream for stabler numbers.
    let n_requests = if quick { 2048 } else { 8192 };

    eprintln!("building recommender deployment...");
    let deployment = build_recommender(DeployScale::quick());
    let service = Arc::new(deployment.service);
    let policy = ExecutionPolicy::budgeted(5);
    let zipf = Zipf::new(deployment.requests.len(), 1.1);
    let mut rng = SmallRng::seed_from_u64(0xA51C);
    let mix: Vec<ActiveUser> = (0..n_requests)
        .map(|_| deployment.requests[zipf.sample(&mut rng)].active.clone())
        .collect();

    // Warm both paths (JIT-free but pools and caches matter).
    for req in mix.iter().take(64) {
        std::hint::black_box(service.serve(req, &policy));
    }

    let mut entries = Vec::new();
    let (seq_thr, seq_p99) = run_sequential(&service, &mix, &policy);
    entries.push(Entry {
        name: "sequential".into(),
        in_flight: 1,
        max_batch: 1,
        throughput_rps: seq_thr,
        p99_ms: seq_p99,
    });

    for &(in_flight, max_batch) in &[
        (1usize, 64usize),
        (64, 64),
        (2048, 64),
        (2048, 1),
        (2048, 16),
    ] {
        let (thr, p99) = run_async(&service, &mix, &policy, in_flight, max_batch);
        let name = if max_batch == 64 {
            format!("async_inflight_{in_flight}")
        } else {
            format!("async_inflight_{in_flight}_batch{max_batch}")
        };
        entries.push(Entry {
            name,
            in_flight,
            max_batch,
            throughput_rps: thr,
            p99_ms: p99,
        });
    }

    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"asyncpath\",\n");
    let _ = writeln!(
        json,
        "  \"scale\": \"{}\",",
        if quick { "quick" } else { "full" }
    );
    let _ = writeln!(json, "  \"requests\": {n_requests},");
    json.push_str("  \"policy\": \"budgeted_5\",\n  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"name\": \"{}\", \"in_flight\": {}, \"max_batch\": {}, \
             \"throughput_rps\": {:.1}, \"p99_ms\": {:.3}, \"speedup\": {:.3}}}",
            e.name,
            e.in_flight,
            e.max_batch,
            e.throughput_rps,
            e.p99_ms,
            e.throughput_rps / seq_thr
        );
        json.push_str(if i + 1 < entries.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&out_path, &json).expect("write BENCH_async.json");
    println!("{json}");
    eprintln!("wrote {out_path}");

    for e in &entries {
        eprintln!(
            "{:<28} {:>10.0} req/s  p99 {:>8.3} ms  speedup {:>6.2}x",
            e.name,
            e.throughput_rps,
            e.p99_ms,
            e.throughput_rps / seq_thr
        );
    }
}

//! Overload-control benchmarks → `BENCH_overload.json`.
//!
//! ```text
//! overloadpath [--quick] [--out PATH]
//! ```
//!
//! Replays the diurnal pattern's trough / shoulder / peak as three
//! open-loop load levels against the recommender deployment under the
//! paper's `Deadline` policy, each level twice: once with `NoControl`
//! (the pre-control dispatcher) and once with a `LadderController`
//! protecting the deadline. Per run it records:
//!
//! * `p99_ms` — p99 response latency (includes queue wait) over served
//!   requests;
//! * `miss_rate` — fraction of served requests whose total latency
//!   exceeded `l_spe` (the paper's deadline-miss metric);
//! * `mean_coverage` — mean per-request coverage of ranked sets, the
//!   accuracy the latency was traded against;
//! * `shed_rate` — fraction of requests dropped by admission control
//!   (always 0 under `NoControl`).
//!
//! Load levels are calibrated against the deployment's own measured
//! full-work service rate, so "peak" genuinely overloads the dispatcher
//! on any machine: under `NoControl` every deadline request burns its
//! remaining `l_spe` improving while the backlog's queue wait blows the
//! deadline for everyone behind it; the `LadderController` instead
//! degrades the newest fraction of traffic down the ladder
//! (`Deadline` → `Budgeted` → `SynopsisOnly`), keeping latency bounded
//! and coverage above the synopsis-only floor. The `summary` object
//! records the head-to-head at the peak level.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

use at_bench::deployments::{build_recommender, DeployScale};
use at_bench::p99_latency_ms;
use at_core::{ExecutionPolicy, FanOutService};
use at_recommender::{ActiveUser, CfService};
use at_server::{LadderConfig, LadderController, NoControl, Server, ServerConfig};
use at_workloads::{arrival_delays, poisson_arrivals, DiurnalPattern, Zipf};
use rand::{rngs::SmallRng, SeedableRng};

/// One (load level × controller) run's measurements.
struct Entry {
    level: &'static str,
    offered_x: f64,
    controller: &'static str,
    offered_rps: f64,
    p99_ms: f64,
    miss_rate: f64,
    mean_coverage: f64,
    shed_rate: f64,
}

/// Measure the sequential full-work service rate (req/s) under the
/// deadline policy — the capacity the load levels are scaled against.
fn calibrate(
    service: &FanOutService<CfService>,
    mix: &[ActiveUser],
    policy: &ExecutionPolicy,
) -> f64 {
    let n = mix.len().min(192);
    let start = Instant::now();
    for req in mix.iter().take(n) {
        std::hint::black_box(service.serve(req, policy));
    }
    n as f64 / start.elapsed().as_secs_f64().max(1e-9)
}

/// Replay `mix` open-loop at `rate` req/s through a fresh server with
/// `controller`, submitting batches of due requests between sleeps.
#[allow(clippy::too_many_arguments)]
fn run_level(
    service: &Arc<FanOutService<CfService>>,
    mix: &[ActiveUser],
    policy: &ExecutionPolicy,
    rate: f64,
    n_requests: usize,
    ladder: Option<LadderConfig>,
) -> (f64, f64, f64, f64) {
    let config = ServerConfig::default()
        .with_queue_capacity(1 << 16)
        .with_max_batch(64)
        .with_stats_window(256);
    let server = match ladder {
        Some(cfg) => Server::with_controller(service.clone(), config, LadderController::new(cfg)),
        None => Server::with_controller(service.clone(), config, NoControl),
    };
    // A Poisson arrival trace at the target rate, replayed in real time.
    let arrivals = poisson_arrivals(rate, n_requests as f64 / rate, 0x0D1E);
    let delays = arrival_delays(&arrivals, 1.0);
    let n = delays.len().min(n_requests);
    let start = Instant::now();
    let mut tickets = Vec::with_capacity(n);
    for (i, delay) in delays.iter().take(n).enumerate() {
        if let Some(remaining) = delay.checked_sub(start.elapsed()) {
            std::thread::sleep(remaining);
        }
        let req = mix[i % mix.len()].clone();
        tickets.push(
            server
                .try_submit(req, *policy)
                .expect("queue sized for peak"),
        );
    }
    let mut latencies = Vec::with_capacity(n);
    let mut coverage_sum = 0.0f64;
    let mut served = 0usize;
    let mut shed = 0usize;
    for ticket in tickets {
        match ticket.wait() {
            Ok(resp) => {
                latencies.push(resp.elapsed);
                coverage_sum += resp.mean_coverage();
                served += 1;
            }
            Err(_) => shed += 1,
        }
    }
    server.shutdown();
    let l_spe = match policy {
        ExecutionPolicy::Deadline { l_spe, .. } => *l_spe,
        _ => unreachable!("overloadpath replays deadline traffic"),
    };
    let missed = latencies.iter().filter(|&&l| l > l_spe).count();
    let miss_rate = if served == 0 {
        1.0
    } else {
        missed as f64 / served as f64
    };
    let mean_coverage = if served == 0 {
        0.0
    } else {
        coverage_sum / served as f64
    };
    let shed_rate = shed as f64 / n as f64;
    (
        p99_latency_ms(&mut latencies),
        miss_rate,
        mean_coverage,
        shed_rate,
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_overload.json".to_string());

    eprintln!("building recommender deployment...");
    let deployment = build_recommender(DeployScale::quick());
    let service = Arc::new(deployment.service);
    let zipf = Zipf::new(deployment.requests.len(), 1.1);
    let mut rng = SmallRng::seed_from_u64(0x0AD5);
    let n_mix = if quick { 1024 } else { 4096 };
    let mix: Vec<ActiveUser> = (0..n_mix)
        .map(|_| deployment.requests[zipf.sample(&mut rng)].active.clone())
        .collect();

    // l_spe scaled to the measured full-work service time so queueing is
    // what decides misses, clamped to a realistic band.
    let probe = ExecutionPolicy::deadline(Duration::from_millis(100));
    for req in mix.iter().take(32) {
        std::hint::black_box(service.serve(req, &probe)); // warm pools
    }
    let full_rps = calibrate(&service, &mix, &probe);
    let service_time = Duration::from_secs_f64(1.0 / full_rps.max(1.0));
    let l_spe = (8 * service_time).clamp(Duration::from_millis(2), Duration::from_millis(100));
    let policy = ExecutionPolicy::deadline(l_spe);
    eprintln!(
        "calibrated: {:.0} req/s sequential full-work, l_spe {:.2} ms",
        full_rps,
        l_spe.as_secs_f64() * 1e3
    );

    // The diurnal pattern's trough / shoulder / peak hours, rescaled so
    // the peak hour offers a multiple of the calibrated capacity.
    let diurnal = DiurnalPattern::sogou_like(4.0 * full_rps);
    let levels: [(&str, usize); 3] = [("trough", 4), ("shoulder", 16), ("peak", 22)];
    let (n_requests, max_level_secs) = if quick { (4096, 1.5) } else { (16384, 4.0) };
    // Degrade whole rounds per level: deadline work cannot collapse
    // duplicates, so a half-degraded round is still throughput-bound by
    // its full-price half — all-or-nothing rungs reach the sustainable
    // operating point in one step.
    let ladder = LadderConfig {
        step_fraction: 1.0,
        ..LadderConfig::for_deadline(l_spe)
    };

    let mut entries: Vec<Entry> = Vec::new();
    for (name, hour) in levels {
        let rate = diurnal.hourly_rate(hour).max(1.0);
        // Cap per-level replay time; overload shows within a few windows.
        let n = n_requests.min((rate * max_level_secs) as usize).max(256);
        for (controller, cfg) in [("none", None), ("ladder", Some(ladder))] {
            let (p99_ms, miss_rate, mean_coverage, shed_rate) =
                run_level(&service, &mix, &policy, rate, n, cfg);
            eprintln!(
                "{name:<9} {controller:<7} {rate:>9.0} req/s  p99 {p99_ms:>9.3} ms  \
                 miss {miss_rate:>6.3}  cov {mean_coverage:>5.3}  shed {shed_rate:>5.3}"
            );
            entries.push(Entry {
                level: name,
                offered_x: rate / full_rps,
                controller,
                offered_rps: rate,
                p99_ms,
                miss_rate,
                mean_coverage,
                shed_rate,
            });
        }
    }

    let peak_none = entries
        .iter()
        .find(|e| e.level == "peak" && e.controller == "none")
        .expect("peak/none entry");
    let peak_ladder = entries
        .iter()
        .find(|e| e.level == "peak" && e.controller == "ladder")
        .expect("peak/ladder entry");

    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"overloadpath\",\n");
    let _ = writeln!(
        json,
        "  \"scale\": \"{}\",",
        if quick { "quick" } else { "full" }
    );
    let _ = writeln!(json, "  \"l_spe_ms\": {:.3},", l_spe.as_secs_f64() * 1e3);
    let _ = writeln!(json, "  \"calibrated_full_rps\": {full_rps:.1},");
    json.push_str("  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"level\": \"{}\", \"controller\": \"{}\", \"offered_rps\": {:.1}, \
             \"offered_x\": {:.2}, \"p99_ms\": {:.3}, \"miss_rate\": {:.4}, \
             \"mean_coverage\": {:.4}, \"shed_rate\": {:.4}}}",
            e.level,
            e.controller,
            e.offered_rps,
            e.offered_x,
            e.p99_ms,
            e.miss_rate,
            e.mean_coverage,
            e.shed_rate
        );
        json.push_str(if i + 1 < entries.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"summary\": {{\"peak_miss_rate_none\": {:.4}, \"peak_miss_rate_ladder\": {:.4}, \
         \"ladder_cuts_peak_miss_rate\": {}, \"peak_coverage_ladder\": {:.4}, \
         \"coverage_above_synopsis_floor\": {}}}",
        peak_none.miss_rate,
        peak_ladder.miss_rate,
        peak_ladder.miss_rate < peak_none.miss_rate,
        peak_ladder.mean_coverage,
        peak_ladder.mean_coverage > 0.0
    );
    json.push('}');
    json.push('\n');

    std::fs::write(&out_path, &json).expect("write BENCH_overload.json");
    println!("{json}");
    eprintln!("wrote {out_path}");
}

//! Multi-worker sharded serving benchmarks → `BENCH_shard.json`.
//!
//! ```text
//! shardpath [--quick] [--out PATH]
//! ```
//!
//! Replays one zipf-skewed request mix against the recommender deployment
//! under `Budgeted{sets: 5}` through an `at_server::ShardedServer` in
//! *replicated* topology, sweeping worker count ∈ {1, 2, 4, 8} × routing
//! strategy ∈ {hash_affinity, least_loaded}. The submitter keeps a fixed
//! sliding window of in-flight tickets, so every configuration sees the
//! same offered load; latency is `ServiceResponse::elapsed` from the
//! enqueue instant (queue wait included).
//!
//! The interesting effect on a core-starved box is **collapse locality**,
//! not parallelism: hash-affinity routing partitions the key space so each
//! worker's micro-batches draw from `K / W` keys. That helps twice:
//!
//! 1. Fewer *unique* requests per batch — each synopsis/improve pass runs
//!    once per unique, so post-collapse compute per batch shrinks even
//!    though total offered load is identical.
//! 2. The duplicate collapse in `serve_batch_at` bails out of its scan
//!    when a batch prefix looks duplicate-poor (a cost guard —
//!    `COLLAPSE_BAIL_MIN_SCAN` in at-core). At the full mix (all ~60 hot
//!    keys, 512-per-batch), the single worker's batches are just unique-
//!    dense enough to trip that guard and serve near-uncollapsed, while
//!    each hash shard sees `K / W` keys, stays duplicate-dense, and
//!    collapses fully. Crossing that threshold is why the measured
//!    hash-affinity speedup lands *above* the analytic prediction.
//!
//! Least-loaded routing interleaves the stream instead, so every worker
//! sees every hot key and duplicates split across queues — it stays at
//! roughly single-worker throughput, which is the point of the contrast.
//!
//! Each entry also carries the analytic prediction from
//! `at_sim::simulate_shards` (per-unique cost calibrated from the measured
//! single-worker run) so the model can be validated against the real
//! server — `speedup_vs_1w` is measured, `model_speedup` is predicted.
//! The model knows only effect 1 (unique-work ratios), so it *under*-
//! predicts hash affinity at the full scale; the gap is effect 2.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use at_bench::deployments::{build_recommender, DeployScale};
use at_bench::p99_latency_ms as p99_ms;
use at_core::{ExecutionPolicy, RouteKey};
use at_recommender::ActiveUser;
use at_server::{RoutingStrategy, ServerConfig, ShardConfig, ShardedServer};
use at_sim::{pick_strategy, simulate_shards, ShardSimConfig, ShardStrategy};
use at_workloads::Zipf;
use rand::{rngs::SmallRng, SeedableRng};

/// Dispatcher micro-batch cap. Large batches are what make collapse
/// locality visible: at 512 the single worker's batches cross the
/// duplicate-density bail-out threshold while per-shard batches do not.
const MAX_BATCH: usize = 512;
/// Sliding window of in-flight tickets — the fixed offered load every
/// configuration sees.
const IN_FLIGHT: usize = 4096;
/// Budgeted sets per request: enough improve work that per-unique compute
/// dominates fixed per-request overhead (enqueue + ticket fulfilment).
const SETS: usize = 5;

struct Entry {
    name: String,
    workers: usize,
    strategy: &'static str,
    throughput_rps: f64,
    p99_ms: f64,
    model_speedup: f64,
}

fn strategy_name(s: RoutingStrategy) -> &'static str {
    match s {
        RoutingStrategy::HashAffinity => "hash_affinity",
        RoutingStrategy::LeastLoaded => "least_loaded",
        RoutingStrategy::RoundRobin => "round_robin",
    }
}

fn to_sim_strategy(s: RoutingStrategy) -> ShardStrategy {
    match s {
        RoutingStrategy::HashAffinity => ShardStrategy::HashAffinity,
        RoutingStrategy::LeastLoaded => ShardStrategy::LeastLoaded,
        RoutingStrategy::RoundRobin => ShardStrategy::RoundRobin,
    }
}

/// Replay `mix` through a fresh sharded server, keeping a sliding window
/// of in-flight tickets, returning (throughput, p99 ms).
fn run_sharded(
    service: &at_core::FanOutService<at_recommender::CfService>,
    mix: &[ActiveUser],
    policy: &ExecutionPolicy,
    workers: usize,
    strategy: RoutingStrategy,
) -> (f64, f64) {
    let config = ShardConfig::default()
        .with_workers(workers)
        .with_routing(strategy)
        .with_work_stealing(true)
        .with_worker(
            ServerConfig::default()
                .with_queue_capacity(IN_FLIGHT * 2)
                .with_max_batch(MAX_BATCH),
        );
    let server = ShardedServer::replicated(service, config);
    let mut latencies = Vec::with_capacity(mix.len());
    let mut window: std::collections::VecDeque<
        at_server::Ticket<at_server::Response<at_recommender::CfService>>,
    > = std::collections::VecDeque::with_capacity(IN_FLIGHT);
    let start = Instant::now();
    for req in mix {
        if window.len() >= IN_FLIGHT {
            let ticket = window.pop_front().unwrap();
            latencies.push(ticket.wait().expect("fulfilled").elapsed);
        }
        window.push_back(server.submit(req.clone(), *policy).expect("accepting"));
    }
    for ticket in window {
        latencies.push(ticket.wait().expect("fulfilled").elapsed);
    }
    let wall = start.elapsed().as_secs_f64();
    server.shutdown();
    (mix.len() as f64 / wall, p99_ms(&mut latencies))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_shard.json".to_string());

    let n_requests = if quick { 4096 } else { 16384 };

    eprintln!("building recommender deployment...");
    // Full runs use the full-size deployment: collapse locality trades
    // per-unique compute against fixed per-request overhead (enqueue,
    // ticket fulfilment), so the effect is honest only when a unique serve
    // costs what production fan-outs cost. The mix is a zipf(1.1) draw
    // over every deployment request — duplicate-heavy traffic over a hot
    // working set is the regime sharding targets.
    let deployment = build_recommender(if quick {
        DeployScale::quick()
    } else {
        DeployScale::full()
    });
    let service = Arc::new(deployment.service);
    let policy = ExecutionPolicy::budgeted(SETS);
    let n_keys = deployment.requests.len();
    let zipf = Zipf::new(n_keys, 1.1);
    let mut rng = SmallRng::seed_from_u64(0x5A4D);
    let mix: Vec<ActiveUser> = (0..n_requests)
        .map(|_| deployment.requests[zipf.sample(&mut rng)].active.clone())
        .collect();
    let keys: Vec<u64> = mix.iter().map(|r| r.route_key()).collect();

    // Warm caches and pools before timing anything.
    for req in mix.iter().take(64) {
        std::hint::black_box(service.serve(req, &policy));
    }

    // Baseline for both the measured speedups and the model calibration:
    // one worker, hash routing (routing is a no-op at W = 1).
    let (base_thr, base_p99) =
        run_sharded(&service, &mix, &policy, 1, RoutingStrategy::HashAffinity);

    // Calibrate the analytic model's per-unique cost from the measured
    // single-worker run: its makespan is the wall time, its unique count
    // comes from replaying the key stream through the same batcher. Only
    // the cost *ratios* matter for predicted speedups.
    let sim_cfg = |workers: usize| {
        let base = simulate_shards(
            &keys,
            ShardStrategy::HashAffinity,
            &ShardSimConfig {
                workers: 1,
                cores: 1,
                max_batch: MAX_BATCH,
                ..ShardSimConfig::default()
            },
        );
        let wall_per_unique = (n_requests as f64 / base_thr)
            / (base.mean_uniques_per_batch * base.batches as f64).max(1.0);
        ShardSimConfig {
            workers,
            cores: 1,
            max_batch: MAX_BATCH,
            pass_s: wall_per_unique * 0.1,
            per_unique_s: wall_per_unique,
            per_request_s: wall_per_unique * 0.01,
            work_stealing: true,
        }
    };
    let model_base = simulate_shards(&keys, ShardStrategy::HashAffinity, &sim_cfg(1));
    let model_pick = pick_strategy(&keys, &sim_cfg(4));
    eprintln!(
        "model picks {} at 4 workers (modelled {:.0} req/s)",
        model_pick.strategy.name(),
        model_pick.throughput_rps
    );

    let mut entries = vec![Entry {
        name: "w1_hash_affinity".into(),
        workers: 1,
        strategy: "hash_affinity",
        throughput_rps: base_thr,
        p99_ms: base_p99,
        model_speedup: 1.0,
    }];

    for workers in [2usize, 4, 8] {
        for &strategy in &[RoutingStrategy::HashAffinity, RoutingStrategy::LeastLoaded] {
            let (thr, p99) = run_sharded(&service, &mix, &policy, workers, strategy);
            let model = simulate_shards(&keys, to_sim_strategy(strategy), &sim_cfg(workers));
            entries.push(Entry {
                name: format!("w{workers}_{}", strategy_name(strategy)),
                workers,
                strategy: strategy_name(strategy),
                throughput_rps: thr,
                p99_ms: p99,
                model_speedup: model_base.makespan_s / model.makespan_s.max(f64::MIN_POSITIVE),
            });
        }
    }

    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"shardpath\",\n");
    let _ = writeln!(
        json,
        "  \"scale\": \"{}\",",
        if quick { "quick" } else { "full" }
    );
    let _ = writeln!(json, "  \"requests\": {n_requests},");
    let _ = writeln!(json, "  \"max_batch\": {},", MAX_BATCH);
    let _ = writeln!(json, "  \"in_flight\": {},", IN_FLIGHT);
    let _ = writeln!(
        json,
        "  \"model_pick_4w\": \"{}\",",
        model_pick.strategy.name()
    );
    json.push_str("  \"policy\": \"budgeted_5\",\n  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"name\": \"{}\", \"workers\": {}, \"strategy\": \"{}\", \
             \"throughput_rps\": {:.1}, \"p99_ms\": {:.3}, \"speedup_vs_1w\": {:.3}, \
             \"model_speedup\": {:.3}}}",
            e.name,
            e.workers,
            e.strategy,
            e.throughput_rps,
            e.p99_ms,
            e.throughput_rps / base_thr,
            e.model_speedup
        );
        json.push_str(if i + 1 < entries.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&out_path, &json).expect("write BENCH_shard.json");
    println!("{json}");
    eprintln!("wrote {out_path}");

    for e in &entries {
        eprintln!(
            "{:<22} {:>10.0} req/s  p99 {:>9.3} ms  speedup {:>6.2}x  (model {:>5.2}x)",
            e.name,
            e.throughput_rps,
            e.p99_ms,
            e.throughput_rps / base_thr,
            e.model_speedup
        );
    }
}

//! Fault-path benchmarks → `BENCH_fault.json`.
//!
//! ```text
//! faultpath [--quick] [--out PATH]
//! ```
//!
//! Measures what robustness costs on the recommender deployment under
//! the `Budgeted` policy:
//!
//! * **Zero-fault overhead** — the same deployment served bare and
//!   wrapped in [`FaultyService`] with *transparent* injectors (no
//!   rules). The wrapper sits on every stage-1/stage-2/compose call, so
//!   this is the chaos harness's steady-state tax; `summary`
//!   records it as `transparent_overhead_pct`.
//! * **Contained fault storm** — a seeded 50% stage-1 panic storm on
//!   one component, replayed through the async server: every ticket
//!   must still resolve, failures are contained to partial responses,
//!   and the tripped breaker turns repeat offenders into skips.
//! * **Supervised compose panics** — scheduled compose-site panics
//!   crash the dispatcher itself; the run records how many supervised
//!   restarts absorbed them and the latency the surviving requests paid.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

use at_bench::p99_latency_ms;
use at_core::{
    partition_rows, Component, ExecutionPolicy, FanOutService, FaultInjector, FaultKind, FaultRule,
    FaultSite, FaultyService,
};
use at_linalg::svd::SvdConfig;
use at_recommender::{rating_matrix, ActiveUser, CfService};
use at_server::{Server, ServerConfig};
use at_synopsis::{AggregationMode, RowStore, SparseRow, SynopsisConfig};
use at_workloads::{RatingsConfig, RatingsDataset};

const COMPONENTS: usize = 6;

fn synopsis_config() -> SynopsisConfig {
    SynopsisConfig {
        svd: SvdConfig::default().with_epochs(20).with_seed(7),
        size_ratio: 12,
        ..SynopsisConfig::default()
    }
}

/// Generate the ratings workload once: partition subsets + active users.
fn workload(quick: bool) -> (Vec<RowStore>, Vec<ActiveUser>) {
    let n_users = if quick { 480 } else { 1200 };
    let n_items = 100;
    let data = RatingsDataset::generate(RatingsConfig {
        n_users,
        n_items,
        ratings_per_user: 30,
        seed: 7,
        ..RatingsConfig::default()
    });
    let matrix = rating_matrix(n_users, n_items, &data.ratings);
    let rows: Vec<SparseRow> = matrix.ids().map(|id| matrix.row(id).clone()).collect();
    let subsets = partition_rows(n_items, rows, COMPONENTS).expect(">= 1 component");
    let mut requests = Vec::new();
    for user in 0..48u32 {
        let profile: Vec<(u32, f64)> = data
            .ratings
            .iter()
            .filter(|r| r.user == user)
            .map(|r| (r.item, r.stars))
            .collect();
        if profile.len() < 4 {
            continue;
        }
        requests.push(ActiveUser::new(
            SparseRow::from_pairs(profile),
            vec![user % 7, user % 7 + 20, user % 7 + 50],
        ));
    }
    (subsets, requests)
}

/// Build the deployment wrapped in `FaultyService` with one injector per
/// component (transparent injectors make the wrapper a pure tax).
fn faulty_deployment(
    subsets: &[RowStore],
    injectors: &[Arc<FaultInjector>],
) -> FanOutService<FaultyService<CfService>> {
    let components = subsets
        .iter()
        .cloned()
        .zip(injectors)
        .map(|(subset, inj)| {
            Component::build(
                subset,
                AggregationMode::Mean,
                synopsis_config(),
                FaultyService::new(CfService, inj.clone()),
            )
            .0
        })
        .collect();
    FanOutService::from_components(components)
}

fn transparent_injectors() -> Vec<Arc<FaultInjector>> {
    (0..COMPONENTS)
        .map(|i| Arc::new(FaultInjector::new(0xFA17 + i as u64)))
        .collect()
}

/// Sequential serve latencies (mean µs, p99 ms) over `iters` calls.
fn serve_latencies<S>(
    service: &FanOutService<S>,
    requests: &[ActiveUser],
    policy: &ExecutionPolicy,
    iters: usize,
) -> (f64, f64)
where
    S: at_core::ComposableService<Request = ActiveUser> + Sync,
    S::Request: Clone + PartialEq,
    S::Output: Send,
{
    let mut latencies = Vec::with_capacity(iters);
    for i in 0..iters {
        let req = &requests[i % requests.len()];
        let start = Instant::now();
        std::hint::black_box(service.serve(req, policy));
        latencies.push(start.elapsed());
    }
    let mean_us = latencies.iter().map(Duration::as_secs_f64).sum::<f64>() / iters as f64 * 1e6;
    (mean_us, p99_latency_ms(&mut latencies))
}

/// Replay `n` requests through a server over `service`; returns
/// (fulfilled, canceled, partial, p99_ms of fulfilled, final stats).
fn run_server(
    service: Arc<FanOutService<FaultyService<CfService>>>,
    requests: &[ActiveUser],
    policy: ExecutionPolicy,
    n: usize,
    max_batch: usize,
) -> (usize, usize, usize, f64, at_server::ServerStats) {
    let server = Server::new(
        service,
        ServerConfig::default()
            .with_queue_capacity(n.max(1))
            .with_max_batch(max_batch)
            .with_restart_backoff(Duration::from_micros(100)),
    );
    server.pause();
    let tickets: Vec<_> = (0..n)
        .map(|i| {
            server
                .try_submit(requests[i % requests.len()].clone(), policy)
                .expect("queue sized for the replay")
        })
        .collect();
    server.resume();
    let mut latencies = Vec::with_capacity(n);
    let (mut fulfilled, mut canceled, mut partial) = (0usize, 0usize, 0usize);
    for ticket in tickets {
        match ticket.wait() {
            Ok(resp) => {
                fulfilled += 1;
                if !resp.is_complete() {
                    partial += 1;
                }
                latencies.push(resp.elapsed);
            }
            Err(_) => canceled += 1,
        }
    }
    let stats = server.shutdown();
    (
        fulfilled,
        canceled,
        partial,
        p99_latency_ms(&mut latencies),
        stats,
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_fault.json".to_string());

    eprintln!("building deployments...");
    let (subsets, requests) = workload(quick);
    let bare = FanOutService::build(
        subsets.clone(),
        AggregationMode::Mean,
        synopsis_config(),
        || CfService,
    );
    let transparent = faulty_deployment(&subsets, &transparent_injectors());
    let policy = ExecutionPolicy::budgeted(2);
    let iters = if quick { 192 } else { 768 };

    // Warm both deployments' pools off the record.
    for req in requests.iter().take(16) {
        std::hint::black_box(bare.serve(req, &policy));
        std::hint::black_box(transparent.serve(req, &policy));
    }

    // Row 1+2: zero-fault overhead, bare vs transparent wrapper.
    // Alternating passes, best-of-3 per deployment: one-shot measurement
    // is dominated by warm-up and frequency noise, not the wrapper.
    let (mut bare_mean_us, mut bare_p99_ms) = (f64::INFINITY, f64::INFINITY);
    let (mut transp_mean_us, mut transp_p99_ms) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..3 {
        let (mean, p99) = serve_latencies(&bare, &requests, &policy, iters);
        if mean < bare_mean_us {
            (bare_mean_us, bare_p99_ms) = (mean, p99);
        }
        let (mean, p99) = serve_latencies(&transparent, &requests, &policy, iters);
        if mean < transp_mean_us {
            (transp_mean_us, transp_p99_ms) = (mean, p99);
        }
    }
    let overhead_pct = (transp_mean_us - bare_mean_us) / bare_mean_us * 100.0;
    eprintln!(
        "zero-fault overhead: bare {bare_mean_us:.1} µs, transparent {transp_mean_us:.1} µs \
         ({overhead_pct:+.2}%)"
    );

    // Injected panics are expected from here on: keep stderr readable.
    std::panic::set_hook(Box::new(|_| {}));

    // Row 3: a 50% stage-1 panic storm on component 0, contained.
    let n_storm = if quick { 256 } else { 1024 };
    let mut storm_injectors = transparent_injectors();
    storm_injectors[0] = Arc::new(FaultInjector::new(0x5707).with_rule(
        FaultRule::with_probability(FaultSite::Stage1, FaultKind::Panic, 0.5),
    ));
    let storm_injector = storm_injectors[0].clone();
    let storm_service = Arc::new(faulty_deployment(&subsets, &storm_injectors));
    let storm_breakers = storm_service.clone();
    let (storm_ok, storm_canceled, storm_partial, storm_p99_ms, storm_stats) =
        run_server(storm_service, &requests, policy, n_storm, 16);
    let storm_trips = storm_breakers.breakers()[0].trips();
    eprintln!(
        "storm: {storm_ok}/{n_storm} fulfilled ({storm_partial} partial), p99 \
         {storm_p99_ms:.3} ms, {} injected panics, {storm_trips} breaker trips",
        storm_injector.injected_panics()
    );

    // Row 4: scheduled compose panics → supervised dispatcher restarts.
    let n_compose = if quick { 128 } else { 512 };
    let crash_every = 16u64;
    let crash_ordinals: Vec<u64> = (0..n_compose as u64 / crash_every)
        .map(|i| i * crash_every)
        .collect();
    let n_crashes = crash_ordinals.len();
    let mut compose_injectors = transparent_injectors();
    compose_injectors[0] = Arc::new(FaultInjector::new(0xC0DE).with_rule(FaultRule::at_calls(
        FaultSite::Compose,
        FaultKind::Panic,
        crash_ordinals,
    )));
    let compose_service = Arc::new(faulty_deployment(&subsets, &compose_injectors));
    // max_batch 1 keeps compose ordinals == request ordinals (no batch
    // mates lost to a crash), so every scheduled crash actually fires.
    let (compose_ok, compose_canceled, _, compose_p99_ms, compose_stats) =
        run_server(compose_service, &requests, policy, n_compose, 1);
    let _ = std::panic::take_hook();
    eprintln!(
        "compose panics: {compose_ok}/{n_compose} fulfilled, {compose_canceled} canceled, \
         {} supervised restarts, p99 {compose_p99_ms:.3} ms",
        compose_stats.dispatcher_restarts
    );

    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"faultpath\",\n");
    let _ = writeln!(
        json,
        "  \"scale\": \"{}\",",
        if quick { "quick" } else { "full" }
    );
    json.push_str("  \"entries\": [\n");
    let _ = writeln!(
        json,
        "    {{\"path\": \"bare\", \"mean_us\": {bare_mean_us:.2}, \"p99_ms\": {bare_p99_ms:.4}}},"
    );
    let _ = writeln!(
        json,
        "    {{\"path\": \"transparent\", \"mean_us\": {transp_mean_us:.2}, \
         \"p99_ms\": {transp_p99_ms:.4}}},"
    );
    let _ = writeln!(
        json,
        "    {{\"path\": \"storm_contained\", \"requests\": {n_storm}, \
         \"fulfilled\": {storm_ok}, \"canceled\": {storm_canceled}, \
         \"partial\": {storm_partial}, \"p99_ms\": {storm_p99_ms:.4}, \
         \"injected_panics\": {}, \"breaker_trips\": {storm_trips}, \
         \"dispatcher_restarts\": {}}},",
        storm_injector.injected_panics(),
        storm_stats.dispatcher_restarts
    );
    let _ = writeln!(
        json,
        "    {{\"path\": \"compose_panic_supervised\", \"requests\": {n_compose}, \
         \"fulfilled\": {compose_ok}, \"canceled\": {compose_canceled}, \
         \"scheduled_crashes\": {n_crashes}, \"dispatcher_restarts\": {}, \
         \"p99_ms\": {compose_p99_ms:.4}}}",
        compose_stats.dispatcher_restarts
    );
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"summary\": {{\"transparent_overhead_pct\": {overhead_pct:.2}, \
         \"storm_every_ticket_resolved\": {}, \"storm_breaker_tripped\": {}, \
         \"restarts_absorbed_all_crashes\": {}, \"server_survived\": {}}}",
        storm_ok + storm_canceled == n_storm,
        storm_trips >= 1,
        compose_stats.dispatcher_restarts as usize == n_crashes,
        !compose_stats.stopped && !storm_stats.stopped
    );
    json.push('}');
    json.push('\n');

    std::fs::write(&out_path, &json).expect("write BENCH_fault.json");
    println!("{json}");
    eprintln!("wrote {out_path}");
}

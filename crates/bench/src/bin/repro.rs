//! Regenerate the paper's tables and figures.
//!
//! ```text
//! repro [--quick] [experiment...]
//!
//! experiments: creation fig3 fig4a fig4b table1 table2 fig5 fig6 fig7 fig8
//!              summary all          (default: all)
//! --quick: test-sized scale (seconds); default is the fuller scale the
//!          EXPERIMENTS.md numbers were recorded at (minutes).
//! ```

use at_bench::experiments as exp;
use at_bench::ExpScale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let scale = if quick {
        ExpScale::quick()
    } else {
        ExpScale::full()
    };
    let mut wanted: Vec<String> = args.into_iter().filter(|a| !a.starts_with("--")).collect();
    if wanted.is_empty() {
        wanted.push("all".to_string());
    }
    let want = |name: &str| wanted.iter().any(|w| w == name || w == "all");
    let needs_summary = want("summary");

    println!(
        "AccuracyTrader reproduction — scale: {}",
        if quick { "quick" } else { "full" }
    );
    println!();

    if want("creation") {
        let t = std::time::Instant::now();
        exp::print_creation(&exp::creation_overheads(&scale));
        eprintln!("[creation took {:.1?}]", t.elapsed());
        println!();
    }
    if want("fig3") {
        let t = std::time::Instant::now();
        exp::print_fig3(&exp::fig3(&scale));
        eprintln!("[fig3 took {:.1?}]", t.elapsed());
        println!();
    }
    if want("fig4a") {
        let t = std::time::Instant::now();
        exp::print_fig4("(a) recommender", &exp::fig4a(&scale));
        eprintln!("[fig4a took {:.1?}]", t.elapsed());
        println!();
    }
    if want("fig4b") {
        let t = std::time::Instant::now();
        exp::print_fig4("(b) search", &exp::fig4b(&scale));
        eprintln!("[fig4b took {:.1?}]", t.elapsed());
        println!();
    }

    let mut t1 = None;
    let mut t2 = None;
    let mut f7 = None;
    let mut f8 = None;

    if want("table1") || needs_summary {
        let t = std::time::Instant::now();
        let v = exp::table1(&scale);
        if want("table1") {
            exp::print_table1(&v);
            println!();
        }
        eprintln!("[table1 took {:.1?}]", t.elapsed());
        t1 = Some(v);
    }
    if want("table2") || needs_summary {
        let t = std::time::Instant::now();
        let v = exp::table2(&scale);
        if want("table2") {
            exp::print_table2(&v);
            println!();
        }
        eprintln!("[table2 took {:.1?}]", t.elapsed());
        t2 = Some(v);
    }
    if want("fig5") {
        let t = std::time::Instant::now();
        exp::print_fig5(&exp::fig5(&scale));
        eprintln!("[fig5 took {:.1?}]", t.elapsed());
        println!();
    }
    if want("fig6") {
        let t = std::time::Instant::now();
        exp::print_fig6(&exp::fig6(&scale));
        eprintln!("[fig6 took {:.1?}]", t.elapsed());
        println!();
    }
    if want("fig7") || needs_summary {
        let t = std::time::Instant::now();
        let v = exp::fig7(&scale);
        if want("fig7") {
            exp::print_fig7(&v);
            println!();
        }
        eprintln!("[fig7 took {:.1?}]", t.elapsed());
        f7 = Some(v);
    }
    if want("fig8") || needs_summary {
        let t = std::time::Instant::now();
        let v = exp::fig8(&scale);
        if want("fig8") {
            exp::print_fig8(&v);
            println!();
        }
        eprintln!("[fig8 took {:.1?}]", t.elapsed());
        f8 = Some(v);
    }
    if needs_summary {
        let s = exp::summary(
            t1.as_ref().expect("table1 ran"),
            t2.as_ref().expect("table2 ran"),
            f7.as_ref().expect("fig7 ran"),
            f8.as_ref().expect("fig8 ran"),
        );
        exp::print_summary(&s);
    }
}

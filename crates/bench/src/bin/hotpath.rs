//! Hot-path before/after microbenchmarks → `BENCH_hotpath.json`.
//!
//! ```text
//! hotpath [--quick] [--out PATH]
//! ```
//!
//! Records the serving-path perf trajectory of the zero-allocation pass as
//! three before/after pairs (nanoseconds per operation, smaller is
//! better):
//!
//! * `pearson` — allocating two-pass [`at_linalg::pearson_on_common_alloc`]
//!   vs the streaming single-pass [`at_linalg::pearson_on_common`].
//! * `rank` — eager full `O(m log m)` [`at_core::rank`] vs budget-bounded
//!   lazy [`at_core::rank_top`].
//! * `budgeted_replay` — a `Budgeted{sets: 5}` replay of the recommender
//!   deployment through the PR-1 eager/allocating path
//!   ([`at_bench::baseline`]) vs the current lazy/streaming
//!   `Component::execute`.
//! * `serve_batch_{1,8,64}` — end-to-end `Budgeted{sets: 5}` replay of a
//!   zipf-skewed request mix against the recommender deployment:
//!   per-request `FanOutService::serve` mapped sequentially over a batch
//!   (before) vs one `serve_batch` call sharing a single fan-out, synopsis
//!   pass, duplicate-request collapsing, and pooled outputs (after), at
//!   batch sizes 1, 8, and 64.
//!
//! The JSON is intentionally flat and hand-written (no serde in the
//! dependency closure): one object per pair with `name`, `before_ns`,
//! `after_ns`, and the derived `speedup`.

use std::fmt::Write as _;
use std::time::Instant;

use at_bench::baseline::{pearson_inputs, replay_baseline, replay_current, synthetic_correlations};
use at_bench::deployments::{build_recommender, DeployScale};
use at_core::{rank, rank_top};
use at_linalg::{pearson_on_common, pearson_on_common_alloc};

struct Pair {
    name: &'static str,
    before_ns: f64,
    after_ns: f64,
}

/// Mean ns/iteration of `f` over `iters` runs (after one warmup run).
fn time_ns(iters: usize, mut f: impl FnMut()) -> f64 {
    f();
    let t = Instant::now();
    for _ in 0..iters {
        f();
    }
    t.elapsed().as_secs_f64() * 1e9 / iters as f64
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_hotpath.json".to_string());

    let (micro_iters, replay_rounds) = if quick { (2_000, 2) } else { (20_000, 6) };
    let mut pairs = Vec::new();

    // 1. Streaming vs allocating Pearson (one CF weight, 200-nnz rows).
    let (ca, va, cb, vb) = pearson_inputs(200);
    let before = time_ns(micro_iters, || {
        std::hint::black_box(pearson_on_common_alloc(&ca, &va, &cb, &vb));
    });
    let after = time_ns(micro_iters, || {
        std::hint::black_box(pearson_on_common(&ca, &va, &cb, &vb));
    });
    pairs.push(Pair {
        name: "pearson",
        before_ns: before,
        after_ns: after,
    });

    // 2. Lazy vs eager ranking (m = 1024 sets, budget 5 — the shape of a
    // Budgeted{5} request against a large synopsis). Clone cost is paid
    // identically on both sides.
    let corr = synthetic_correlations(1024);
    let before = time_ns(micro_iters, || {
        std::hint::black_box(rank(corr.clone()));
    });
    let after = time_ns(micro_iters, || {
        let mut c = corr.clone();
        let mut prefix = rank_top(&mut c, 5);
        std::hint::black_box(prefix.get(4));
    });
    pairs.push(Pair {
        name: "rank",
        before_ns: before,
        after_ns: after,
    });

    // 3. Budgeted recommender replay: every request against every
    // component under Budgeted{sets: 5}, current vs PR-1 baseline path.
    eprintln!("building recommender deployment...");
    let deployment = build_recommender(DeployScale::quick());
    let n_execs = deployment.requests.len() * deployment.service.len();
    // Warmup both paths once, then alternate rounds and keep the mean.
    replay_current(&deployment, 5);
    replay_baseline(&deployment, 5);
    let mut before_s = 0.0;
    let mut after_s = 0.0;
    for _ in 0..replay_rounds {
        before_s += replay_baseline(&deployment, 5);
        after_s += replay_current(&deployment, 5);
    }
    pairs.push(Pair {
        name: "budgeted_replay",
        before_ns: before_s * 1e9 / (replay_rounds * n_execs) as f64,
        after_ns: after_s * 1e9 / (replay_rounds * n_execs) as f64,
    });

    // 4. Batched vs sequential end-to-end serve: the same zipf-skewed
    // request mix (hot requests repeat, as in the paper's query logs)
    // through serve() one request at a time vs one serve_batch() call,
    // per-request ns at batch sizes 1/8/64.
    let policy = at_core::ExecutionPolicy::budgeted(5);
    let serve_rounds = if quick { 4 } else { 12 };
    let zipf = at_workloads::Zipf::new(deployment.requests.len(), 1.1);
    let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(0x5EED);
    for &batch_size in &[1usize, 8, 64] {
        let batch: Vec<_> = (0..batch_size)
            .map(|_| deployment.requests[zipf.sample(&mut rng)].active.clone())
            .collect();
        // Warm both paths (and the output pool) once.
        for req in &batch {
            std::hint::black_box(deployment.service.serve(req, &policy));
        }
        std::hint::black_box(deployment.service.serve_batch(&batch, &policy));
        let mut seq_s = 0.0;
        let mut batch_s = 0.0;
        for _ in 0..serve_rounds {
            let t = Instant::now();
            for req in &batch {
                std::hint::black_box(deployment.service.serve(req, &policy));
            }
            seq_s += t.elapsed().as_secs_f64();
            let t = Instant::now();
            std::hint::black_box(deployment.service.serve_batch(&batch, &policy));
            batch_s += t.elapsed().as_secs_f64();
        }
        let per_req = (serve_rounds * batch_size) as f64;
        pairs.push(Pair {
            name: match batch_size {
                1 => "serve_batch_1",
                8 => "serve_batch_8",
                _ => "serve_batch_64",
            },
            before_ns: seq_s * 1e9 / per_req,
            after_ns: batch_s * 1e9 / per_req,
        });
    }

    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"hotpath\",\n");
    let _ = writeln!(
        json,
        "  \"scale\": \"{}\",",
        if quick { "quick" } else { "full" }
    );
    json.push_str("  \"unit\": \"ns_per_op\",\n  \"entries\": [\n");
    for (i, p) in pairs.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"name\": \"{}\", \"before_ns\": {:.1}, \"after_ns\": {:.1}, \"speedup\": {:.3}}}",
            p.name,
            p.before_ns,
            p.after_ns,
            p.before_ns / p.after_ns
        );
        json.push_str(if i + 1 < pairs.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&out_path, &json).expect("write BENCH_hotpath.json");
    println!("{json}");
    eprintln!("wrote {out_path}");

    for p in &pairs {
        eprintln!(
            "{:<16} before {:>12.1} ns  after {:>12.1} ns  speedup {:>6.2}x",
            p.name,
            p.before_ns,
            p.after_ns,
            p.before_ns / p.after_ns
        );
    }
}

//! Hot-path before/after microbenchmarks → `BENCH_hotpath.json`.
//!
//! ```text
//! hotpath [--quick] [--out PATH]
//! ```
//!
//! Records the serving-path perf trajectory of the zero-allocation pass as
//! three before/after pairs (nanoseconds per operation, smaller is
//! better):
//!
//! * `pearson` — allocating two-pass [`at_linalg::pearson_on_common_alloc`]
//!   vs the streaming single-pass [`at_linalg::pearson_on_common`].
//! * `pearson_blocked` — the same allocating baseline vs the blocked-layout
//!   kernel [`at_linalg::pearson_on_common_blocked`] over prebuilt bucketed
//!   rows (what the serving path now runs).
//! * `pearson_blocked_nnz{16,128,1024}` — blocked kernel vs the scalar
//!   streaming merge across row densities, locating the crossover where
//!   block-aligned intersection beats the two-pointer scan.
//! * `rank` — eager full `O(m log m)` [`at_core::rank`] vs budget-bounded
//!   lazy [`at_core::rank_top`].
//! * `budgeted_replay` — a `Budgeted{sets: 5}` replay of the recommender
//!   deployment through the PR-1 eager/allocating path
//!   ([`at_bench::baseline`]) vs the current lazy/streaming
//!   `Component::execute`.
//! * `serve_batch_{1,8,64}` — end-to-end `Budgeted{sets: 5}` replay of a
//!   zipf-skewed request mix against the recommender deployment:
//!   per-request `FanOutService::serve` mapped sequentially over a batch
//!   (before) vs one `serve_batch` call sharing a single fan-out, synopsis
//!   pass, duplicate-request collapsing, and pooled outputs (after), at
//!   batch sizes 1, 8, and 64.
//!
//! The JSON is intentionally flat and hand-written (no serde in the
//! dependency closure): one object per pair with `name`, `before_ns`,
//! `after_ns`, and the derived `speedup`.

use std::fmt::Write as _;
use std::time::Instant;

use at_bench::baseline::{pearson_inputs, replay_baseline, replay_current, synthetic_correlations};
use at_bench::deployments::{build_recommender, DeployScale};
use at_core::{rank, rank_top};
use at_linalg::{
    pearson_on_common, pearson_on_common_alloc, pearson_on_common_blocked, BlockedRow,
};

struct Pair {
    name: &'static str,
    before_ns: f64,
    after_ns: f64,
}

/// Best-trial ns/iteration of `f`: `iters` runs split into 7 trials (after
/// one warmup run), keeping the fastest trial's mean. The minimum is robust
/// to scheduler preemption and frequency dips, which only ever slow a trial
/// down — the shared-runner noise that a single long mean folds in.
fn time_ns(iters: usize, mut f: impl FnMut()) -> f64 {
    f();
    let trials = 7;
    let per_trial = (iters / trials).max(1);
    let mut best = f64::INFINITY;
    for _ in 0..trials {
        let t = Instant::now();
        for _ in 0..per_trial {
            f();
        }
        best = best.min(t.elapsed().as_secs_f64() * 1e9 / per_trial as f64);
    }
    best
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_hotpath.json".to_string());

    let (micro_iters, replay_rounds) = if quick { (2_000, 2) } else { (20_000, 6) };
    let mut pairs = Vec::new();

    // 1. Streaming vs allocating Pearson (one CF weight, 200-nnz rows).
    let (ca, va, cb, vb) = pearson_inputs(200);
    let before = time_ns(micro_iters, || {
        std::hint::black_box(pearson_on_common_alloc(&ca, &va, &cb, &vb));
    });
    let after = time_ns(micro_iters, || {
        std::hint::black_box(pearson_on_common(&ca, &va, &cb, &vb));
    });
    pairs.push(Pair {
        name: "pearson",
        before_ns: before,
        after_ns: after,
    });

    // 1b. Blocked-layout Pearson against the same allocating baseline: the
    // bucketed rows are built once (as RowStore/Synopsis hold them cached)
    // and the kernel merges 8-wide occupancy blocks instead of single
    // columns.
    let ba = BlockedRow::from_sorted(&ca, &va);
    let bb = BlockedRow::from_sorted(&cb, &vb);
    let before = time_ns(micro_iters, || {
        std::hint::black_box(pearson_on_common_alloc(&ca, &va, &cb, &vb));
    });
    let after = time_ns(micro_iters, || {
        std::hint::black_box(pearson_on_common_blocked(&ba, &bb));
    });
    pairs.push(Pair {
        name: "pearson_blocked",
        before_ns: before,
        after_ns: after,
    });

    // 1c. nnz sweep, blocked vs scalar streaming merge: shows where the
    // block-aligned intersection wins (dense-ish rows, long runs of full
    // 8-wide blocks) and where the scalar two-pointer merge still holds
    // its own (short sparse rows where per-block setup dominates).
    for &(nnz, dense, name) in &[
        (16usize, false, "pearson_blocked_nnz16"),
        (128, false, "pearson_blocked_nnz128"),
        (1024, false, "pearson_blocked_nnz1024"),
        (1024, true, "pearson_blocked_dense1024"),
    ] {
        let (ca, va, cb, vb) = if dense {
            // Contiguous columns: every block is fully occupied, so the
            // merge runs the unrolled full-mask path end to end.
            let cols: Vec<u32> = (0..nnz as u32).collect();
            let va: Vec<f64> = (0..nnz).map(|i| 1.0 + (i % 5) as f64).collect();
            let vb: Vec<f64> = (0..nnz).map(|i| 5.0 - (i % 4) as f64).collect();
            (cols.clone(), va, cols, vb)
        } else {
            pearson_inputs(nnz)
        };
        let ba = BlockedRow::from_sorted(&ca, &va);
        let bb = BlockedRow::from_sorted(&cb, &vb);
        let before = time_ns(micro_iters, || {
            std::hint::black_box(pearson_on_common(&ca, &va, &cb, &vb));
        });
        let after = time_ns(micro_iters, || {
            std::hint::black_box(pearson_on_common_blocked(&ba, &bb));
        });
        pairs.push(Pair {
            name,
            before_ns: before,
            after_ns: after,
        });
    }

    // 2. Lazy vs eager ranking (m = 1024 sets, budget 5 — the shape of a
    // Budgeted{5} request against a large synopsis). Clone cost is paid
    // identically on both sides.
    let corr = synthetic_correlations(1024);
    let before = time_ns(micro_iters, || {
        std::hint::black_box(rank(corr.clone()));
    });
    let after = time_ns(micro_iters, || {
        let mut c = corr.clone();
        let mut prefix = rank_top(&mut c, 5);
        std::hint::black_box(prefix.get(4));
    });
    pairs.push(Pair {
        name: "rank",
        before_ns: before,
        after_ns: after,
    });

    // 3. Budgeted recommender replay: every request against every
    // component under Budgeted{sets: 5}, current vs PR-1 baseline path.
    eprintln!("building recommender deployment...");
    let deployment = build_recommender(DeployScale::quick());
    let n_execs = deployment.requests.len() * deployment.service.len();
    // Warmup both paths once, then alternate rounds and keep each path's
    // fastest round (same noise rationale as `time_ns`).
    replay_current(&deployment, 5);
    replay_baseline(&deployment, 5);
    let mut before_ns = f64::INFINITY;
    let mut after_ns = f64::INFINITY;
    for _ in 0..replay_rounds {
        before_ns = before_ns.min(replay_baseline(&deployment, 5) * 1e9 / n_execs as f64);
        after_ns = after_ns.min(replay_current(&deployment, 5) * 1e9 / n_execs as f64);
    }
    pairs.push(Pair {
        name: "budgeted_replay",
        before_ns,
        after_ns,
    });

    // 4. Batched vs sequential end-to-end serve: the same zipf-skewed
    // request mix (hot requests repeat, as in the paper's query logs)
    // through serve() one request at a time vs one serve_batch() call,
    // per-request ns at batch sizes 1/8/64.
    let policy = at_core::ExecutionPolicy::budgeted(5);
    let serve_rounds = if quick { 4 } else { 12 };
    let zipf = at_workloads::Zipf::new(deployment.requests.len(), 1.1);
    let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(0x5EED);
    for &batch_size in &[1usize, 8, 64] {
        let batch: Vec<_> = (0..batch_size)
            .map(|_| deployment.requests[zipf.sample(&mut rng)].active.clone())
            .collect();
        // Warm both paths (and the output pool) once.
        for req in &batch {
            std::hint::black_box(deployment.service.serve(req, &policy));
        }
        std::hint::black_box(deployment.service.serve_batch(&batch, &policy));
        let mut seq_ns = f64::INFINITY;
        let mut batch_ns = f64::INFINITY;
        for _ in 0..serve_rounds {
            let t = Instant::now();
            for req in &batch {
                std::hint::black_box(deployment.service.serve(req, &policy));
            }
            seq_ns = seq_ns.min(t.elapsed().as_secs_f64() * 1e9 / batch_size as f64);
            let t = Instant::now();
            std::hint::black_box(deployment.service.serve_batch(&batch, &policy));
            batch_ns = batch_ns.min(t.elapsed().as_secs_f64() * 1e9 / batch_size as f64);
        }
        pairs.push(Pair {
            name: match batch_size {
                1 => "serve_batch_1",
                8 => "serve_batch_8",
                _ => "serve_batch_64",
            },
            before_ns: seq_ns,
            after_ns: batch_ns,
        });
    }

    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"hotpath\",\n");
    let _ = writeln!(
        json,
        "  \"scale\": \"{}\",",
        if quick { "quick" } else { "full" }
    );
    json.push_str("  \"unit\": \"ns_per_op\",\n  \"entries\": [\n");
    for (i, p) in pairs.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"name\": \"{}\", \"before_ns\": {:.1}, \"after_ns\": {:.1}, \"speedup\": {:.3}}}",
            p.name,
            p.before_ns,
            p.after_ns,
            p.before_ns / p.after_ns
        );
        json.push_str(if i + 1 < pairs.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&out_path, &json).expect("write BENCH_hotpath.json");
    println!("{json}");
    eprintln!("wrote {out_path}");

    for p in &pairs {
        eprintln!(
            "{:<16} before {:>12.1} ns  after {:>12.1} ns  speedup {:>6.2}x",
            p.name,
            p.before_ns,
            p.after_ns,
            p.before_ns / p.after_ns
        );
    }
}

//! Pre-optimisation replicas of the serving hot path, kept as the
//! **"before"** side of the hot-path benchmarks (`BENCH_hotpath.json` and
//! `cargo bench -p at-bench --bench hotpath`).
//!
//! Two deliberate regressions are reproduced here so the perf trajectory
//! keeps an honest baseline:
//!
//! * [`AllocCfService`] — the PR-1 CF adapter behaviour: every Pearson
//!   weight allocates two intersection vectors
//!   ([`at_linalg::pearson_on_common_alloc`]), each synopsis weight is
//!   computed twice (once for the correlation estimate, once inside the
//!   accumulator), neighbour means are rescanned per request, and targets
//!   are found by per-target binary search.
//! * [`execute_eager`] — the eager driver: a full `O(m log m)`
//!   [`at_core::rank`] sort regardless of how many sets the budget will
//!   consume.
//!
//! Serving code must never use this module; it exists to be measured
//! against.

use std::time::Instant;

use at_core::{rank, ApproximateService, Component, Correlation, Ctx, Outcome};
use at_linalg::pearson_on_common_alloc;
use at_recommender::{ActiveUser, PredictionAcc};
use at_rtree::NodeId;
use at_synopsis::SparseRow;

/// Two synthetic sparse rating rows with ~2/3 overlap — the shape of one
/// CF weight computation. Shared by the criterion bench and the `hotpath`
/// binary so the recorded trajectory and the interactive bench always
/// measure the same workload.
pub fn pearson_inputs(nnz: usize) -> (Vec<u32>, Vec<f64>, Vec<u32>, Vec<f64>) {
    let cols_a: Vec<u32> = (0..nnz as u32).map(|i| i * 3 / 2).collect();
    let cols_b: Vec<u32> = (0..nnz as u32).map(|i| i * 3 / 2 + (i % 3) / 2).collect();
    let vals_a: Vec<f64> = (0..nnz).map(|i| 1.0 + (i % 5) as f64).collect();
    let vals_b: Vec<f64> = (0..nnz).map(|i| 5.0 - (i % 4) as f64).collect();
    (cols_a, vals_a, cols_b, vals_b)
}

/// `m` correlations with a pseudo-random (Knuth-hash) score distribution —
/// the input shape of the ranking microbenches.
pub fn synthetic_correlations(m: usize) -> Vec<Correlation> {
    (0..m)
        .map(|i| Correlation {
            node: NodeId::from_index(i as u32),
            score: ((i * 2654435761) % 1000) as f64 / 1000.0,
        })
        .collect()
}

/// The allocating Pearson weight with the CF minimum-common-items rule.
fn weight_alloc(active: &SparseRow, neighbor: &SparseRow) -> f64 {
    let (w, common) =
        pearson_on_common_alloc(&active.cols, &active.vals, &neighbor.cols, &neighbor.vals);
    if common < at_recommender::predict::MIN_COMMON_ITEMS {
        0.0
    } else {
        w
    }
}

/// The PR-1 accumulator: recomputes the weight and the neighbour mean on
/// every call, and binary-searches the neighbour row once per target.
fn accumulate_alloc(
    active: &ActiveUser,
    neighbor: &SparseRow,
    multiplier: f64,
    acc: &mut [PredictionAcc],
) {
    let w = weight_alloc(&active.profile, neighbor);
    if w == 0.0 || neighbor.vals.is_empty() {
        return;
    }
    let neighbor_mean = neighbor.vals.iter().sum::<f64>() / neighbor.vals.len() as f64;
    for (t, a) in active.targets.iter().zip(acc.iter_mut()) {
        if let Some(r) = neighbor.get(*t) {
            a.num += w * (r - neighbor_mean) * multiplier;
            a.den += w.abs() * multiplier;
        }
    }
}

/// The CF service as it behaved before the zero-allocation pass — a
/// drop-in [`ApproximateService`] over the same component state, so the
/// benchmarks replay identical requests through old and new code paths.
#[derive(Clone, Copy, Debug, Default)]
pub struct AllocCfService;

impl ApproximateService for AllocCfService {
    type Request = ActiveUser;
    type Output = Vec<PredictionAcc>;

    fn process_synopsis(
        &self,
        ctx: Ctx<'_>,
        req: &ActiveUser,
        corr: &mut Vec<Correlation>,
    ) -> Self::Output {
        let mut acc = vec![PredictionAcc::default(); req.targets.len()];
        for p in ctx.store.synopsis().iter() {
            // Weight computed once here...
            let w = weight_alloc(&req.profile, &p.info);
            corr.push(Correlation {
                node: p.node,
                score: w.abs(),
            });
            // ...and a second time inside the accumulator (the PR-1 bug).
            accumulate_alloc(req, &p.info, p.member_count as f64, &mut acc);
        }
        acc
    }

    fn improve(
        &self,
        ctx: Ctx<'_>,
        req: &ActiveUser,
        out: &mut Self::Output,
        node: NodeId,
        members: &[u64],
    ) {
        if let Some(p) = ctx.store.synopsis().point(node) {
            accumulate_alloc(req, &p.info, -(p.member_count as f64), out);
        }
        for &m in members {
            accumulate_alloc(req, ctx.dataset.row(m), 1.0, out);
        }
    }

    fn process_exact(&self, ctx: Ctx<'_>, req: &ActiveUser) -> Self::Output {
        let mut acc = vec![PredictionAcc::default(); req.targets.len()];
        for id in ctx.dataset.ids() {
            accumulate_alloc(req, ctx.dataset.row(id), 1.0, &mut acc);
        }
        acc
    }
}

/// The eager budgeted driver: stage 1 into a fresh vector, a full
/// `O(m log m)` sort, then the same best-first improvement loop —
/// `Algorithm1::execute` before lazy ranking. Deterministic (no deadline),
/// so before/after replays process identical sets.
pub fn execute_eager<C: ApproximateService, S: ApproximateService>(
    component: &Component<C>,
    service: &S,
    req: &S::Request,
    sets: usize,
) -> Outcome<S::Output> {
    let ctx = component.ctx();
    let mut corr = Vec::new();
    let mut out = service.process_synopsis(ctx, req, &mut corr);
    let total = corr.len();
    let ranked = rank(corr);
    let mut processed = 0usize;
    let mut skipped = 0usize;
    for c in &ranked {
        if processed >= sets {
            break;
        }
        match ctx.store.index().members(c.node) {
            Some(members) => {
                service.improve(ctx, req, &mut out, c.node, members);
                processed += 1;
            }
            None => skipped += 1,
        }
    }
    Outcome {
        output: out,
        sets_processed: processed,
        sets_total: total,
        sets_skipped: skipped,
    }
}

/// Replay `requests` against every component under a deterministic set
/// budget using the **current** lazy/streaming path; returns elapsed
/// seconds (outputs are black-boxed).
pub fn replay_current(deployment: &crate::deployments::RecDeployment, budget: usize) -> f64 {
    let policy = at_core::ExecutionPolicy::budgeted(budget);
    let t = Instant::now();
    for req in &deployment.requests {
        for c in deployment.service.components() {
            std::hint::black_box(c.execute(&req.active, &policy, Instant::now()));
        }
    }
    t.elapsed().as_secs_f64()
}

/// Replay `requests` using the **baseline** eager-sort + allocating path
/// over the same components; returns elapsed seconds.
pub fn replay_baseline(deployment: &crate::deployments::RecDeployment, budget: usize) -> f64 {
    let svc = AllocCfService;
    let t = Instant::now();
    for req in &deployment.requests {
        for c in deployment.service.components() {
            std::hint::black_box(execute_eager(c, &svc, &req.active, budget));
        }
    }
    t.elapsed().as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deployments::{build_recommender, DeployScale};
    use at_core::{ComposableService, ExecutionPolicy};
    use at_recommender::CfService;

    /// The baseline must be *faithful*: same predictions as the current
    /// path under the same budget, or the benchmark compares apples to
    /// oranges.
    #[test]
    fn baseline_predictions_match_current_path() {
        let d = build_recommender(DeployScale::quick());
        let policy = ExecutionPolicy::budgeted(5);
        for req in d.requests.iter().take(6) {
            let current: Vec<_> = d
                .service
                .components()
                .iter()
                .map(|c| c.execute(&req.active, &policy, Instant::now()).output)
                .collect();
            let baseline: Vec<_> = d
                .service
                .components()
                .iter()
                .map(|c| execute_eager(c, &AllocCfService, &req.active, 5).output)
                .collect();
            let pc = CfService.compose(&req.active, &current);
            let pb = CfService.compose(&req.active, &baseline);
            for (a, b) in pc.iter().zip(&pb) {
                assert!((a - b).abs() < 1e-9, "current {a} vs baseline {b}");
            }
        }
    }
}

//! # at-bench
//!
//! The benchmark harness of the AccuracyTrader reproduction: builds the
//! two service deployments, couples the `at-sim` latency simulator with
//! real-service accuracy replay, and regenerates **every table and figure**
//! of the paper's evaluation (§4).
//!
//! * [`deployments`] — recommender/search fan-out deployments + workloads.
//! * [`replay`] — turn simulated per-component budgets into RMSE /
//!   top-10-overlap accuracy numbers by running the real services.
//! * [`experiments`] — one driver per table/figure (Table 1, Table 2,
//!   Figures 3–8, the §4.2 creation overheads, and the §4.3 summary).
//! * [`baseline`] — pre-optimisation hot-path replicas (allocating
//!   Pearson, eager full-sort ranking) measured as the "before" side of
//!   the hot-path benchmarks.
//!
//! Entry points: `cargo run -p at-bench --bin repro --release -- all`,
//! `cargo run -p at-bench --bin hotpath --release` (writes
//! `BENCH_hotpath.json`), or the criterion benches
//! (`cargo bench -p at-bench`).

pub mod baseline;
pub mod deployments;
pub mod experiments;
pub mod replay;

pub use deployments::{
    build_recommender, build_search, DeployScale, RecDeployment, SearchDeployment,
};
pub use experiments::ExpScale;
pub use replay::{rec_accuracy_loss, rec_rmse, search_accuracy_loss, search_overlap, Budget};

/// Nearest-rank p99 of a latency sample, in milliseconds — the one
/// definition shared by every bench binary. Sorts in place; `0.0` for an
/// empty sample.
pub fn p99_latency_ms(latencies: &mut [std::time::Duration]) -> f64 {
    if latencies.is_empty() {
        return 0.0;
    }
    latencies.sort_unstable();
    let idx = ((latencies.len() as f64 * 0.99).ceil() as usize).clamp(1, latencies.len()) - 1;
    latencies[idx].as_secs_f64() * 1e3
}

//! One driver per table/figure of the paper's evaluation (§4).
//!
//! Every driver returns a plain data struct with a `print()` that emits the
//! same rows/series the paper reports. The `repro` binary and the criterion
//! benches call these; EXPERIMENTS.md records paper-vs-measured values.

use at_linalg::svd::SvdConfig;
use at_recommender::{rating_matrix, section_relatedness, ActiveUser, CfService};
use at_rtree::RTreeConfig;
use at_search::{section_top_k_coverage, SearchRequest, SearchService};
use at_sim::{
    run_fixed_rate, run_hour_window, CostModel, RequestSample, SimConfig, SimResult, Technique,
};
use at_synopsis::{
    AggregationMode, DataUpdate, RowStore, SparseRow, SynopsisConfig, SynopsisStore,
};
use at_workloads::{
    Corpus, CorpusConfig, DiurnalPattern, MapReduceConfig, QueryGenerator, RatingsConfig,
    RatingsDataset,
};
use rayon::prelude::*;

use crate::deployments::{build_recommender, build_search, DeployScale};
use crate::replay::{rec_accuracy_loss, search_accuracy_loss, Budget};

/// Knobs controlling how much compute each experiment burns.
#[derive(Clone, Copy, Debug)]
pub struct ExpScale {
    /// Accuracy-side deployment scale.
    pub deploy: DeployScale,
    /// Simulated components for the rate sweeps (paper: 108).
    pub table_components: usize,
    /// Simulated components for the diurnal figures.
    pub fig_components: usize,
    /// Duration of each fixed-rate cell (s).
    pub table_duration_s: f64,
    /// Window each diurnal hour is compressed into (s).
    pub fig_window_s: f64,
    /// Peak requests/second of the diurnal pattern.
    pub peak_rps: f64,
    /// Simulator request-sampling stride for accuracy replay.
    pub sample_every: usize,
    /// Physical nodes.
    pub n_nodes: usize,
    /// Subset size for the offline-module experiments (synopsis creation /
    /// update / Figure 4), in data points.
    pub offline_subset: usize,
    /// RNG seed.
    pub seed: u64,
}

impl ExpScale {
    /// Small scale: seconds per experiment (tests, criterion).
    pub fn quick() -> Self {
        ExpScale {
            deploy: DeployScale::quick(),
            table_components: 24,
            fig_components: 12,
            table_duration_s: 15.0,
            fig_window_s: 60.0,
            peak_rps: 40.0,
            sample_every: 40,
            n_nodes: 8,
            offline_subset: 1200,
            seed: 0xE0,
        }
    }

    /// Full scale for the `repro` binary (minutes per experiment).
    pub fn full() -> Self {
        ExpScale {
            deploy: DeployScale::full(),
            table_components: 108,
            fig_components: 36,
            table_duration_s: 60.0,
            fig_window_s: 300.0,
            peak_rps: 100.0,
            sample_every: 100,
            n_nodes: 30,
            offline_subset: 4000,
            seed: 0xE0,
        }
    }

    fn sim_config(&self, n_components: usize, sample: bool) -> SimConfig {
        SimConfig {
            n_components,
            n_nodes: self.n_nodes,
            cost: CostModel::default(),
            interference: MapReduceConfig {
                n_nodes: self.n_nodes,
                ..MapReduceConfig::default()
            },
            sample_every: if sample { self.sample_every } else { 0 },
            seed: self.seed ^ 0x51,
            ..SimConfig::default()
        }
    }
}

// ---------------------------------------------------------------------
// §4.2: synopsis creation overheads
// ---------------------------------------------------------------------

/// Per-service synopsis-creation report (§4.2: creation time per step,
/// aggregation ratio — the paper's 133.01 users / 42.55 pages).
#[derive(Clone, Debug)]
pub struct CreationReport {
    /// Service label.
    pub service: &'static str,
    /// Build report of one subset.
    pub report: at_synopsis::BuildReport,
}

/// Build one paper-shaped subset per service and report creation costs.
pub fn creation_overheads(scale: &ExpScale) -> Vec<CreationReport> {
    let (rec_data, _) = offline_recommender_subset(scale);
    let (_, rec_report) = SynopsisStore::build(
        &rec_data,
        AggregationMode::Mean,
        offline_synopsis_config(scale, 100),
    );
    let (search_data, _) = offline_search_subset(scale);
    let (_, search_report) = SynopsisStore::build(
        &search_data,
        AggregationMode::Merge,
        offline_synopsis_config(scale, 40),
    );
    vec![
        CreationReport {
            service: "recommender",
            report: rec_report,
        },
        CreationReport {
            service: "search",
            report: search_report,
        },
    ]
}

/// Print the creation-overheads table.
pub fn print_creation(reports: &[CreationReport]) {
    println!("== §4.2 synopsis creation overheads ==");
    println!(
        "{:<12} {:>9} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "service", "points", "agg", "ratio", "step1(ms)", "step2(ms)", "step3(ms)"
    );
    for r in reports {
        println!(
            "{:<12} {:>9} {:>10} {:>10.2} {:>10.1} {:>10.1} {:>10.1}",
            r.service,
            r.report.n_points,
            r.report.n_aggregated,
            r.report.mean_group_size,
            r.report.reduce_time.as_secs_f64() * 1000.0,
            r.report.organize_time.as_secs_f64() * 1000.0,
            r.report.aggregate_time.as_secs_f64() * 1000.0,
        );
    }
}

fn offline_synopsis_config(scale: &ExpScale, ratio: usize) -> SynopsisConfig {
    SynopsisConfig {
        svd: SvdConfig::paper().with_seed(scale.seed),
        rtree: RTreeConfig::default(),
        size_ratio: ratio,
    }
}

/// One recommender subset (paper: ~4000 users × 1000 items) plus its
/// ratings dataset.
fn offline_recommender_subset(scale: &ExpScale) -> (RowStore, RatingsDataset) {
    let data = RatingsDataset::generate(RatingsConfig {
        n_users: scale.offline_subset,
        n_items: (scale.offline_subset / 4).clamp(60, 1000),
        ratings_per_user: 50,
        seed: scale.seed,
        ..RatingsConfig::default()
    });
    let store = rating_matrix(
        scale.offline_subset,
        (scale.offline_subset / 4).clamp(60, 1000),
        &data.ratings,
    );
    (store, data)
}

/// One search subset plus its corpus.
fn offline_search_subset(scale: &ExpScale) -> (RowStore, Corpus) {
    let corpus = Corpus::generate(CorpusConfig {
        n_docs: scale.offline_subset,
        vocab: (scale.offline_subset * 2).clamp(600, 8000),
        n_topics: 20,
        seed: scale.seed ^ 0x3,
        ..CorpusConfig::default()
    });
    let mut store = RowStore::new(corpus.config.vocab);
    for d in &corpus.docs {
        store.push_row(SparseRow::from_pairs(d.terms.clone()));
    }
    (store, corpus)
}

// ---------------------------------------------------------------------
// Figure 3: synopsis updating time vs. change fraction
// ---------------------------------------------------------------------

/// Figure 3 data: update durations (ms) for i% additions and i% changes.
#[derive(Clone, Debug)]
pub struct Fig3 {
    /// Percent values tested (1..=10).
    pub percents: Vec<usize>,
    /// (service label, add-durations ms, change-durations ms).
    pub series: Vec<(&'static str, Vec<f64>, Vec<f64>)>,
}

/// Run the Figure-3 updating experiment on both services' subsets.
pub fn fig3(scale: &ExpScale) -> Fig3 {
    let percents: Vec<usize> = (1..=10).collect();
    let mut series = Vec::new();
    for service in ["recommender", "search"] {
        let (data, mode) = if service == "recommender" {
            (offline_recommender_subset(scale).0, AggregationMode::Mean)
        } else {
            (offline_search_subset(scale).0, AggregationMode::Merge)
        };
        let cfg = offline_synopsis_config(scale, 60);
        let (store, _) = SynopsisStore::build(&data, mode, cfg);

        let run = |make: &dyn Fn(usize, &RowStore) -> Vec<DataUpdate>| -> Vec<f64> {
            percents
                .iter()
                .map(|&pct| {
                    // Fresh copies per scenario, as in the paper's repeats.
                    let mut d = data.clone();
                    let mut s = store.clone();
                    let n = (d.len() * pct / 100).max(1);
                    let updates = make(n, &d);
                    let report = s.apply_updates(&mut d, updates);
                    debug_assert!(s.validate().is_ok());
                    report.duration.as_secs_f64() * 1000.0
                })
                .collect()
        };

        let adds = run(&|n, d| {
            (0..n)
                .map(|i| DataUpdate::Add(d.row((i % d.len()) as u64).clone()))
                .collect()
        });
        let changes = run(&|n, d| {
            (0..n)
                .map(|i| {
                    let id = (i * 7 % d.len()) as u64;
                    // Perturb the row: shift every value by one notch.
                    let row = d.row(id);
                    let new = SparseRow::from_pairs(
                        row.iter().map(|(c, v)| (c, (v + 1.0).min(5.0))).collect(),
                    );
                    DataUpdate::Change { id, row: new }
                })
                .collect()
        });
        series.push((
            if service == "recommender" {
                "recommender"
            } else {
                "search"
            },
            adds,
            changes,
        ));
    }
    Fig3 { percents, series }
}

/// Print Figure 3.
pub fn print_fig3(f: &Fig3) {
    println!("== Figure 3: synopsis updating time (ms) ==");
    for (service, adds, changes) in &f.series {
        println!("-- {service} --");
        println!("{:<10} {:>12} {:>12}", "i%", "add", "change");
        for (i, &pct) in f.percents.iter().enumerate() {
            println!("{:<10} {:>12.2} {:>12.2}", pct, adds[i], changes[i]);
        }
    }
}

// ---------------------------------------------------------------------
// Figure 4: effectiveness of synopses
// ---------------------------------------------------------------------

/// Figure 4 data: per ranked section, the average percentage of highly
/// related original data points (a) / of actual top-10 pages (b).
#[derive(Clone, Debug)]
pub struct Fig4 {
    /// Ten ranked sections, best first.
    pub sections: Vec<f64>,
    /// Number of requests averaged over.
    pub n_requests: usize,
}

/// Figure 4(a): recommender — % of highly related users (|w| > 0.8) per
/// ranked section of aggregated users.
pub fn fig4a(scale: &ExpScale) -> Fig4 {
    let (store, data) = offline_recommender_subset(scale);
    // size_ratio chosen so the synopsis has enough aggregated points for
    // ten meaningful sections.
    let cfg = offline_synopsis_config(scale, 30);
    let (syn, _) = SynopsisStore::build(&store, AggregationMode::Mean, cfg);
    let component = at_core::Component::from_parts(store, syn, CfService);

    let (train, _) = data.holdout_split(0.8, scale.seed);
    let n_requests = scale.deploy.n_requests.min(100);
    let sums: Vec<f64> = (0..n_requests as u32)
        .into_par_iter()
        .map(|user| {
            let profile: Vec<(u32, f64)> = train
                .iter()
                .filter(|r| r.user == user)
                .map(|r| (r.item, r.stars))
                .collect();
            let req = ActiveUser::new(SparseRow::from_pairs(profile), vec![0]);
            section_relatedness(component.ctx(), &req, 0.8, 10)
        })
        .reduce(
            || vec![0.0; 10],
            |mut a, b| {
                for (x, y) in a.iter_mut().zip(&b) {
                    *x += y;
                }
                a
            },
        );
    Fig4 {
        sections: sums.iter().map(|s| s / n_requests as f64).collect(),
        n_requests,
    }
}

/// Figure 4(b): search — % of actual top-10 pages per ranked section of
/// aggregated pages.
pub fn fig4b(scale: &ExpScale) -> Fig4 {
    let (store, corpus) = offline_search_subset(scale);
    let service = SearchService::build(&store, 10);
    let cfg = offline_synopsis_config(scale, 30);
    let (syn, _) = SynopsisStore::build(&store, AggregationMode::Merge, cfg);
    let component = at_core::Component::from_parts(store, syn, service);

    let mut generator = QueryGenerator::new(&corpus, scale.seed ^ 0x44);
    let n_requests = scale.deploy.n_requests.min(100);
    let queries: Vec<SearchRequest> = generator
        .batch(&corpus, n_requests)
        .iter()
        .map(SearchRequest::from)
        .collect();
    let sums: Vec<f64> = queries
        .par_iter()
        .map(|q| section_top_k_coverage(component.ctx(), component.service(), q, 10))
        .reduce(
            || vec![0.0; 10],
            |mut a, b| {
                for (x, y) in a.iter_mut().zip(&b) {
                    *x += y;
                }
                a
            },
        );
    Fig4 {
        sections: sums.iter().map(|s| s / n_requests as f64).collect(),
        n_requests,
    }
}

/// Print Figure 4(a) or (b).
pub fn print_fig4(label: &str, f: &Fig4) {
    println!(
        "== Figure 4{label}: ranked sections vs. relatedness (avg over {} requests) ==",
        f.n_requests
    );
    println!("{:<10} {:>10}", "section", "% related");
    for (i, s) in f.sections.iter().enumerate() {
        println!("{:<10} {:>10.2}", i + 1, s);
    }
}

// ---------------------------------------------------------------------
// Tables 1 & 2: fixed-rate CF workload
// ---------------------------------------------------------------------

/// Table 1 data: 99.9th-percentile component latency (ms) per technique
/// per arrival rate.
#[derive(Clone, Debug)]
pub struct Table1 {
    /// Request arrival rates (req/s).
    pub rates: Vec<f64>,
    /// Basic row (ms).
    pub basic: Vec<f64>,
    /// Request-reissue row (ms).
    pub reissue: Vec<f64>,
    /// AccuracyTrader row (ms).
    pub accuracy_trader: Vec<f64>,
}

/// Run Table 1: Basic vs. reissue vs. AccuracyTrader tails under the
/// synthetic CF workload.
pub fn table1(scale: &ExpScale) -> Table1 {
    let rates = vec![20.0, 40.0, 60.0, 80.0, 100.0];
    let cfg = scale.sim_config(scale.table_components, false);
    let run = |technique: Technique| -> Vec<f64> {
        rates
            .par_iter()
            .map(|&r| {
                run_fixed_rate(r, scale.table_duration_s, technique, &cfg)
                    .latencies
                    .p999_ms()
            })
            .collect()
    };
    Table1 {
        rates: rates.clone(),
        basic: run(Technique::Basic),
        reissue: run(Technique::Reissue {
            trigger_percentile: 95.0,
        }),
        accuracy_trader: run(Technique::AccuracyTrader {
            deadline_s: 0.1,
            imax: None,
        }),
    }
}

/// Print Table 1.
pub fn print_table1(t: &Table1) {
    println!("== Table 1: 99.9th-percentile component latency (ms), CF workload ==");
    print!("{:<16}", "rate (req/s)");
    for r in &t.rates {
        print!("{:>12.0}", r);
    }
    println!();
    for (name, row) in [
        ("Basic", &t.basic),
        ("Reissue", &t.reissue),
        ("AccuracyTrader", &t.accuracy_trader),
    ] {
        print!("{:<16}", name);
        for v in row {
            print!("{:>12.0}", v);
        }
        println!();
    }
}

/// Table 2 data: accuracy-loss % per technique per arrival rate.
#[derive(Clone, Debug)]
pub struct Table2 {
    /// Request arrival rates (req/s).
    pub rates: Vec<f64>,
    /// Partial-execution row (%).
    pub partial: Vec<f64>,
    /// AccuracyTrader row (%).
    pub accuracy_trader: Vec<f64>,
}

/// Run Table 2: partial execution vs. AccuracyTrader accuracy losses under
/// the CF workload, replaying simulated budgets against the real service.
pub fn table2(scale: &ExpScale) -> Table2 {
    let rates = vec![20.0, 40.0, 60.0, 80.0, 100.0];
    let deployment = build_recommender(scale.deploy);
    let cfg = scale.sim_config(scale.table_components, true);

    let cells: Vec<(f64, f64)> = rates
        .par_iter()
        .map(|&rate| {
            let partial_sim = run_fixed_rate(
                rate,
                scale.table_duration_s,
                Technique::Partial { deadline_s: 0.1 },
                &cfg,
            );
            let at_sim = run_fixed_rate(
                rate,
                scale.table_duration_s,
                Technique::AccuracyTrader {
                    deadline_s: 0.1,
                    imax: None,
                },
                &cfg,
            );
            let partial_loss = rec_accuracy_loss(&deployment, &partial_sim.samples, |s| {
                Budget::Mask(s.made_deadline.as_ref().expect("partial mask"))
            });
            let at_loss = rec_accuracy_loss(&deployment, &at_sim.samples, |s| Budget::Sets {
                sets: s.sets_processed.as_ref().expect("AT sets"),
                sim_total: CostModel::default().n_sets,
                imax_frac: None,
            });
            (partial_loss, at_loss)
        })
        .collect();
    Table2 {
        rates,
        partial: cells.iter().map(|c| c.0).collect(),
        accuracy_trader: cells.iter().map(|c| c.1).collect(),
    }
}

/// Print Table 2.
pub fn print_table2(t: &Table2) {
    println!("== Table 2: accuracy losses (%), CF workload ==");
    print!("{:<18}", "rate (req/s)");
    for r in &t.rates {
        print!("{:>12.0}", r);
    }
    println!();
    for (name, row) in [
        ("Partial exec", &t.partial),
        ("AccuracyTrader", &t.accuracy_trader),
    ] {
        print!("{:<18}", name);
        for v in row {
            print!("{:>12.2}", v);
        }
        println!();
    }
}

// ---------------------------------------------------------------------
// Figures 5-8: diurnal search workload
// ---------------------------------------------------------------------

/// One technique's per-minute p99.9 series for one hour, plus arrivals.
#[derive(Clone, Debug)]
pub struct HourSeries {
    /// Hour of day (1..=24).
    pub hour: usize,
    /// Requests per minute-bucket (the (a)/(e)/(i) panels).
    pub arrivals_per_bucket: Vec<usize>,
    /// (technique label, per-bucket p99.9 ms).
    pub series: Vec<(&'static str, Vec<Option<f64>>)>,
}

/// Figure 5: tail-latency series for the characteristic hours 9/10/24
/// under Basic, reissue, and AccuracyTrader.
pub fn fig5(scale: &ExpScale) -> Vec<HourSeries> {
    let pattern = DiurnalPattern::sogou_like(scale.peak_rps);
    let cfg = scale.sim_config(scale.fig_components, false);
    let (h_inc, h_steady, h_dec) = DiurnalPattern::characteristic_hours();
    [h_inc, h_steady, h_dec]
        .into_par_iter()
        .map(|hour| {
            let techniques: Vec<(&'static str, Technique)> = vec![
                ("Basic", Technique::Basic),
                (
                    "Reissue",
                    Technique::Reissue {
                        trigger_percentile: 95.0,
                    },
                ),
                (
                    "AccuracyTrader",
                    Technique::AccuracyTrader {
                        deadline_s: 0.1,
                        imax: Some(imax_40pct(scale)),
                    },
                ),
            ];
            let mut arrivals_per_bucket = Vec::new();
            let series = techniques
                .into_iter()
                .map(|(name, tech)| {
                    let r = run_hour_window(&pattern, hour, scale.fig_window_s, tech, &cfg);
                    if arrivals_per_bucket.is_empty() {
                        arrivals_per_bucket = bucket_arrivals(&r, scale);
                    }
                    (name, r.bucketed.p999_series_ms())
                })
                .collect();
            HourSeries {
                hour,
                arrivals_per_bucket,
                series,
            }
        })
        .collect()
}

/// The paper's search setting: process at most the top 40% of ranked sets.
fn imax_40pct(_scale: &ExpScale) -> usize {
    (CostModel::default().n_sets as f64 * 0.4).ceil() as usize
}

fn bucket_arrivals(r: &SimResult, _scale: &ExpScale) -> Vec<usize> {
    // Approximate per-bucket arrival counts from the bucketed recorder.
    (0..r.bucketed.len())
        .map(|i| r.bucketed.bucket(i).len())
        .collect()
}

/// Print Figure 5 (sampled minutes to keep the table readable).
pub fn print_fig5(hours: &[HourSeries]) {
    println!("== Figure 5: per-minute p99.9 component latency (ms), hours 9/10/24 ==");
    for h in hours {
        println!("-- hour {} --", h.hour);
        print!("{:<8}", "minute");
        for m in (0..60).step_by(6) {
            print!("{:>10}", m + 1);
        }
        println!();
        print!("{:<8}", "arrivals");
        for m in (0..60).step_by(6) {
            print!("{:>10}", h.arrivals_per_bucket.get(m).copied().unwrap_or(0));
        }
        println!();
        for (name, series) in &h.series {
            print!("{:<8}", &name[..name.len().min(8)]);
            for m in (0..60).step_by(6) {
                match series.get(m).copied().flatten() {
                    Some(v) => print!("{:>10.0}", v),
                    None => print!("{:>10}", "-"),
                }
            }
            println!();
        }
    }
}

/// Accuracy-loss series for one hour: Partial vs. AccuracyTrader, grouped
/// into coarse time bins (Figure 6).
#[derive(Clone, Debug)]
pub struct Fig6Hour {
    /// Hour of day.
    pub hour: usize,
    /// Loss % per bin: (partial, accuracy_trader).
    pub bins: Vec<(f64, f64)>,
}

/// Figure 6: accuracy losses over hours 9/10/24 (search workload).
pub fn fig6(scale: &ExpScale) -> Vec<Fig6Hour> {
    let pattern = DiurnalPattern::sogou_like(scale.peak_rps);
    let cfg = scale.sim_config(scale.fig_components, true);
    let deployment = build_search(scale.deploy);
    let (h_inc, h_steady, h_dec) = DiurnalPattern::characteristic_hours();
    let n_bins = 6usize;
    [h_inc, h_steady, h_dec]
        .iter()
        .map(|&hour| {
            let partial = run_hour_window(
                &pattern,
                hour,
                scale.fig_window_s,
                Technique::Partial { deadline_s: 0.1 },
                &cfg,
            );
            let at = run_hour_window(
                &pattern,
                hour,
                scale.fig_window_s,
                Technique::AccuracyTrader {
                    deadline_s: 0.1,
                    imax: Some(imax_40pct(scale)),
                },
                &cfg,
            );
            let bins = (0..n_bins)
                .into_par_iter()
                .map(|bin| {
                    let lo = scale.fig_window_s * bin as f64 / n_bins as f64;
                    let hi = scale.fig_window_s * (bin + 1) as f64 / n_bins as f64;
                    let in_bin = |s: &&RequestSample| s.arrival_s >= lo && s.arrival_s < hi;
                    let p_samples: Vec<RequestSample> =
                        partial.samples.iter().filter(in_bin).cloned().collect();
                    let a_samples: Vec<RequestSample> =
                        at.samples.iter().filter(in_bin).cloned().collect();
                    let p_loss = if p_samples.is_empty() {
                        0.0
                    } else {
                        search_accuracy_loss(&deployment, &p_samples, |s| {
                            Budget::Mask(s.made_deadline.as_ref().expect("mask"))
                        })
                    };
                    let a_loss = if a_samples.is_empty() {
                        0.0
                    } else {
                        search_accuracy_loss(&deployment, &a_samples, |s| Budget::Sets {
                            sets: s.sets_processed.as_ref().expect("sets"),
                            sim_total: CostModel::default().n_sets,
                            imax_frac: Some(0.4),
                        })
                    };
                    (p_loss, a_loss)
                })
                .collect();
            Fig6Hour { hour, bins }
        })
        .collect()
}

/// Print Figure 6.
pub fn print_fig6(hours: &[Fig6Hour]) {
    println!("== Figure 6: accuracy losses (%), hours 9/10/24, search workload ==");
    for h in hours {
        println!("-- hour {} --", h.hour);
        println!("{:<8} {:>12} {:>16}", "bin", "Partial", "AccuracyTrader");
        for (i, (p, a)) in h.bins.iter().enumerate() {
            println!("{:<8} {:>12.2} {:>16.2}", i + 1, p, a);
        }
    }
}

/// Figure 7 data: hourly arrival rates and hourly p99.9 per technique.
#[derive(Clone, Debug)]
pub struct Fig7 {
    /// Mean arrival rate per hour (req/s), hour 1 first.
    pub hourly_rates: Vec<f64>,
    /// (technique, per-hour p99.9 ms).
    pub series: Vec<(&'static str, Vec<f64>)>,
}

/// Figure 7: 24-hour tail-latency comparison.
pub fn fig7(scale: &ExpScale) -> Fig7 {
    let pattern = DiurnalPattern::sogou_like(scale.peak_rps);
    let cfg = scale.sim_config(scale.fig_components, false);
    let techniques: Vec<(&'static str, Technique)> = vec![
        ("Basic", Technique::Basic),
        (
            "Reissue",
            Technique::Reissue {
                trigger_percentile: 95.0,
            },
        ),
        (
            "AccuracyTrader",
            Technique::AccuracyTrader {
                deadline_s: 0.1,
                imax: Some(imax_40pct(scale)),
            },
        ),
    ];
    let series = techniques
        .into_iter()
        .map(|(name, tech)| {
            let per_hour: Vec<f64> = (1..=24usize)
                .into_par_iter()
                .map(|h| {
                    run_hour_window(&pattern, h, scale.fig_window_s, tech, &cfg)
                        .latencies
                        .p999_ms()
                })
                .collect();
            (name, per_hour)
        })
        .collect();
    Fig7 {
        hourly_rates: pattern.hourly().to_vec(),
        series,
    }
}

/// Print Figure 7.
pub fn print_fig7(f: &Fig7) {
    println!("== Figure 7: hourly p99.9 component latency (ms), 24-hour search workload ==");
    print!("{:<16}", "hour");
    for h in 1..=24 {
        print!("{:>9}", h);
    }
    println!();
    print!("{:<16}", "rate (req/s)");
    for r in &f.hourly_rates {
        print!("{:>9.1}", r);
    }
    println!();
    for (name, row) in &f.series {
        print!("{:<16}", name);
        for v in row {
            print!("{:>9.0}", v);
        }
        println!();
    }
}

/// Figure 8 data: hourly accuracy losses, Partial vs. AccuracyTrader.
#[derive(Clone, Debug)]
pub struct Fig8 {
    /// Per-hour loss % (hour 1 first): (partial, accuracy_trader).
    pub hours: Vec<(f64, f64)>,
}

/// Figure 8: 24-hour accuracy-loss comparison (search workload).
pub fn fig8(scale: &ExpScale) -> Fig8 {
    let pattern = DiurnalPattern::sogou_like(scale.peak_rps);
    let cfg = scale.sim_config(scale.fig_components, true);
    let deployment = build_search(scale.deploy);
    let hours: Vec<(f64, f64)> = (1..=24usize)
        .into_par_iter()
        .map(|h| {
            let partial = run_hour_window(
                &pattern,
                h,
                scale.fig_window_s,
                Technique::Partial { deadline_s: 0.1 },
                &cfg,
            );
            let at = run_hour_window(
                &pattern,
                h,
                scale.fig_window_s,
                Technique::AccuracyTrader {
                    deadline_s: 0.1,
                    imax: Some(imax_40pct(scale)),
                },
                &cfg,
            );
            let p_loss = search_accuracy_loss(&deployment, &partial.samples, |s| {
                Budget::Mask(s.made_deadline.as_ref().expect("mask"))
            });
            let a_loss = search_accuracy_loss(&deployment, &at.samples, |s| Budget::Sets {
                sets: s.sets_processed.as_ref().expect("sets"),
                sim_total: CostModel::default().n_sets,
                imax_frac: Some(0.4),
            });
            (p_loss, a_loss)
        })
        .collect();
    Fig8 { hours }
}

/// Print Figure 8.
pub fn print_fig8(f: &Fig8) {
    println!("== Figure 8: hourly accuracy losses (%), 24-hour search workload ==");
    println!("{:<6} {:>12} {:>16}", "hour", "Partial", "AccuracyTrader");
    for (i, (p, a)) in f.hours.iter().enumerate() {
        println!("{:<6} {:>12.2} {:>16.2}", i + 1, p, a);
    }
}

// ---------------------------------------------------------------------
// §4.3 summary ratios
// ---------------------------------------------------------------------

/// The paper's headline ratios (§4.3 "Results").
#[derive(Clone, Debug)]
pub struct Summary {
    /// Tail-latency reduction of AT vs. reissue, CF workload (paper:
    /// 133.38×).
    pub latency_reduction_cf: f64,
    /// Tail-latency reduction of AT vs. reissue, search workload (paper:
    /// 42.72×).
    pub latency_reduction_search: f64,
    /// AT accuracy loss, CF (paper: 1.97%).
    pub at_loss_cf: f64,
    /// Accuracy-loss reduction of AT vs. partial, CF (paper: 15.12×).
    pub loss_reduction_cf: f64,
    /// Accuracy-loss reduction of AT vs. partial, search (paper: 13.85×).
    pub loss_reduction_search: f64,
}

/// Compute the summary ratios from already-run experiments.
pub fn summary(t1: &Table1, t2: &Table2, f7: &Fig7, f8: &Fig8) -> Summary {
    // CF latency: mean reduction over the heavy-load cells (rate >= 60).
    let heavy: Vec<usize> = t1
        .rates
        .iter()
        .enumerate()
        .filter(|(_, &r)| r >= 60.0)
        .map(|(i, _)| i)
        .collect();
    let latency_reduction_cf = mean_ratio(
        heavy.iter().map(|&i| t1.reissue[i]),
        heavy.iter().map(|&i| t1.accuracy_trader[i]),
    );
    // Search latency: mean over busy hours (rate above the daily median).
    let median = {
        let mut r = f7.hourly_rates.clone();
        r.sort_by(|a, b| a.partial_cmp(b).expect("rates"));
        r[12]
    };
    let busy: Vec<usize> = f7
        .hourly_rates
        .iter()
        .enumerate()
        .filter(|(_, &r)| r > median)
        .map(|(i, _)| i)
        .collect();
    let reissue = &f7
        .series
        .iter()
        .find(|(n, _)| *n == "Reissue")
        .expect("reissue")
        .1;
    let at = &f7
        .series
        .iter()
        .find(|(n, _)| *n == "AccuracyTrader")
        .expect("AT")
        .1;
    let latency_reduction_search = mean_ratio(
        busy.iter().map(|&i| reissue[i]),
        busy.iter().map(|&i| at[i]),
    );

    let at_loss_cf = at_linalg::stats::mean(&t2.accuracy_trader);
    let loss_reduction_cf = mean_ratio(
        t2.partial.iter().copied(),
        t2.accuracy_trader.iter().copied(),
    );
    let loss_reduction_search =
        mean_ratio(f8.hours.iter().map(|h| h.0), f8.hours.iter().map(|h| h.1));
    Summary {
        latency_reduction_cf,
        latency_reduction_search,
        at_loss_cf,
        loss_reduction_cf,
        loss_reduction_search,
    }
}

fn mean_ratio(num: impl Iterator<Item = f64>, den: impl Iterator<Item = f64>) -> f64 {
    let pairs: Vec<(f64, f64)> = num.zip(den).filter(|&(_, d)| d > 1e-9).collect();
    if pairs.is_empty() {
        return f64::NAN;
    }
    pairs.iter().map(|(n, d)| n / d).sum::<f64>() / pairs.len() as f64
}

/// Print the summary.
pub fn print_summary(s: &Summary) {
    println!("== §4.3 summary (paper values in parentheses) ==");
    println!(
        "AT vs reissue tail-latency reduction, CF:     {:8.2}x  (133.38x)",
        s.latency_reduction_cf
    );
    println!(
        "AT vs reissue tail-latency reduction, search: {:8.2}x  (42.72x)",
        s.latency_reduction_search
    );
    println!(
        "AT accuracy loss, CF:                         {:8.2}%  (1.97%)",
        s.at_loss_cf
    );
    println!(
        "AT vs partial accuracy-loss reduction, CF:    {:8.2}x  (15.12x)",
        s.loss_reduction_cf
    );
    println!(
        "AT vs partial accuracy-loss reduction, search:{:8.2}x  (13.85x)",
        s.loss_reduction_search
    );
}

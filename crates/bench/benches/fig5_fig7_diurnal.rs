//! Figures 5 & 7: diurnal-workload tail-latency sweeps — cost of one
//! characteristic hour (Fig 5 panels) and of a full 24-hour day (Fig 7
//! rows) per technique.

use at_sim::{run_hour_window, Technique};
use at_workloads::DiurnalPattern;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rayon::prelude::*;

fn bench_diurnal(c: &mut Criterion) {
    let pattern = DiurnalPattern::sogou_like(40.0);
    let cfg = at_sim::SimConfig {
        n_components: 12,
        n_nodes: 8,
        ..at_sim::SimConfig::default()
    };
    let techniques = [
        ("basic", Technique::Basic),
        (
            "reissue",
            Technique::Reissue {
                trigger_percentile: 95.0,
            },
        ),
        (
            "accuracy_trader",
            Technique::AccuracyTrader {
                deadline_s: 0.1,
                imax: Some(12),
            },
        ),
    ];

    let mut group = c.benchmark_group("fig5_hour_panels");
    group.sample_size(10);
    for (name, technique) in techniques {
        // Hour 10 (steady) is the paper's busiest characteristic hour.
        group.bench_with_input(BenchmarkId::new(name, "hour10"), &technique, |b, &t| {
            b.iter(|| {
                let r = run_hour_window(&pattern, 10, 60.0, t, &cfg);
                r.bucketed.p999_series_ms()
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("fig7_full_day");
    group.sample_size(10);
    group.bench_function("accuracy_trader_24h", |b| {
        b.iter(|| {
            (1..=24usize)
                .into_par_iter()
                .map(|h| {
                    run_hour_window(
                        &pattern,
                        h,
                        30.0,
                        Technique::AccuracyTrader {
                            deadline_s: 0.1,
                            imax: Some(12),
                        },
                        &cfg,
                    )
                    .latencies
                    .p999_ms()
                })
                .collect::<Vec<_>>()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_diurnal);
criterion_main!(benches);

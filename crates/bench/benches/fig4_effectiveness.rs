//! Figure 4: effectiveness of the synopses — the cost of the ranking
//! analyses that produce the section-relatedness (a) and top-10-coverage
//! (b) curves.

use at_bench::experiments::{fig4a, fig4b, ExpScale};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_fig4(c: &mut Criterion) {
    let scale = ExpScale::quick();
    let mut group = c.benchmark_group("fig4_effectiveness");
    group.sample_size(10);
    group.bench_function("fig4a_recommender_sections", |b| {
        b.iter(|| {
            let f = fig4a(&scale);
            assert_eq!(f.sections.len(), 10);
            f
        })
    });
    group.bench_function("fig4b_search_sections", |b| {
        b.iter(|| {
            let f = fig4b(&scale);
            assert_eq!(f.sections.len(), 10);
            f
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);

//! §4.2 synopsis creation: cost of each of the three offline steps.
//!
//! Regenerates the creation-overheads analysis (the paper built a
//! recommender synopsis in ~30 s and a search synopsis in ~40 min at
//! testbed scale; we report laptop-scale absolute times and the per-step
//! breakdown shape).

use at_linalg::svd::SvdConfig;
use at_recommender::rating_matrix;
use at_rtree::{RTree, RTreeConfig};
use at_synopsis::{AggregationMode, Reducer, RowStore, SparseRow, SynopsisConfig, SynopsisStore};
use at_workloads::{Corpus, CorpusConfig, RatingsConfig, RatingsDataset};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

fn rec_subset(n: usize) -> RowStore {
    let data = RatingsDataset::generate(RatingsConfig {
        n_users: n,
        n_items: 200,
        ratings_per_user: 50,
        ..RatingsConfig::small()
    });
    rating_matrix(n, 200, &data.ratings)
}

fn search_subset(n: usize) -> RowStore {
    let corpus = Corpus::generate(CorpusConfig {
        n_docs: n,
        vocab: 3000,
        n_topics: 15,
        ..CorpusConfig::default()
    });
    let mut s = RowStore::new(3000);
    for d in &corpus.docs {
        s.push_row(SparseRow::from_pairs(d.terms.clone()));
    }
    s
}

fn bench_creation(c: &mut Criterion) {
    let mut group = c.benchmark_group("synopsis_creation");
    group.sample_size(10);

    let rec = rec_subset(1500);
    let search = search_subset(1500);
    let cfg = SynopsisConfig {
        svd: SvdConfig::default().with_epochs(30),
        size_ratio: 50,
        ..SynopsisConfig::default()
    };

    group.bench_function("recommender_full_pipeline", |b| {
        b.iter(|| SynopsisStore::build(&rec, AggregationMode::Mean, cfg))
    });
    group.bench_function("search_full_pipeline", |b| {
        b.iter(|| SynopsisStore::build(&search, AggregationMode::Merge, cfg))
    });

    // Step-level costs.
    group.bench_function("step1_svd_reduction", |b| {
        b.iter(|| Reducer::fit(&rec, cfg.svd))
    });
    let reducer = Reducer::fit(&rec, cfg.svd);
    let points: Vec<(u64, Vec<f64>)> = rec
        .ids()
        .map(|id| (id, reducer.reduced(id).to_vec()))
        .collect();
    group.bench_function("step2_rtree_bulk_load", |b| {
        b.iter_batched(
            || points.clone(),
            |p| RTree::bulk_load(3, RTreeConfig::default(), p),
            BatchSize::SmallInput,
        )
    });
    let tree = RTree::bulk_load(3, RTreeConfig::default(), points);
    let depth = tree.select_depth(rec.len() / 50);
    let groups: Vec<Vec<u64>> = tree
        .nodes_at_depth(depth)
        .into_iter()
        .map(|n| tree.items_under(n))
        .collect();
    group.bench_function("step3_aggregation", |b| {
        b.iter(|| {
            groups
                .iter()
                .map(|g| rec.aggregate(g, AggregationMode::Mean))
                .collect::<Vec<_>>()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_creation);
criterion_main!(benches);

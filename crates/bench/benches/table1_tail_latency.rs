//! Table 1: 99.9th-percentile component latency under the CF workload —
//! Basic vs. request reissue vs. AccuracyTrader at each arrival rate.

use at_bench::ExpScale;
use at_sim::{run_fixed_rate, Technique};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_table1(c: &mut Criterion) {
    let scale = ExpScale::quick();
    let cfg = at_sim::SimConfig {
        n_components: scale.table_components,
        n_nodes: scale.n_nodes,
        ..at_sim::SimConfig::default()
    };
    let mut group = c.benchmark_group("table1_tail_latency");
    group.sample_size(10);
    for rate in [20.0f64, 60.0, 100.0] {
        for (name, technique) in [
            ("basic", Technique::Basic),
            (
                "reissue",
                Technique::Reissue {
                    trigger_percentile: 95.0,
                },
            ),
            (
                "accuracy_trader",
                Technique::AccuracyTrader {
                    deadline_s: 0.1,
                    imax: None,
                },
            ),
        ] {
            group.bench_with_input(BenchmarkId::new(name, rate as u64), &rate, |b, &rate| {
                b.iter(|| {
                    let r = run_fixed_rate(rate, 10.0, technique, &cfg);
                    r.latencies.p999_ms()
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);

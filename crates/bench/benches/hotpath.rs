//! Hot-path microbenches: streaming vs allocating Pearson, lazy vs eager
//! ranking, and the budgeted recommender replay through the current vs the
//! PR-1 baseline path. The `hotpath` binary records the same pairs into
//! `BENCH_hotpath.json` for the perf trajectory.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use at_bench::baseline::{execute_eager, pearson_inputs, synthetic_correlations, AllocCfService};
use at_bench::deployments::{build_recommender, DeployScale};
use at_core::{rank, rank_top, ExecutionPolicy};
use at_linalg::{
    pearson_on_common, pearson_on_common_alloc, pearson_on_common_blocked,
    pearson_on_common_lanes8, BlockedRow,
};
use std::time::Instant;

fn bench_pearson(c: &mut Criterion) {
    let mut g = c.benchmark_group("pearson");
    let (ca, va, cb, vb) = pearson_inputs(200);
    let ba = BlockedRow::from_sorted(&ca, &va);
    let bb = BlockedRow::from_sorted(&cb, &vb);
    g.bench_function("streaming", |b| {
        b.iter(|| pearson_on_common(&ca, &va, &cb, &vb))
    });
    g.bench_function("blocked", |b| {
        b.iter(|| pearson_on_common_blocked(&ba, &bb))
    });
    g.bench_function("lanes8", |b| {
        b.iter(|| pearson_on_common_lanes8(&ca, &va, &cb, &vb))
    });
    g.bench_function("allocating_baseline", |b| {
        b.iter(|| pearson_on_common_alloc(&ca, &va, &cb, &vb))
    });
    g.finish();
}

fn bench_ranking(c: &mut Criterion) {
    let mut g = c.benchmark_group("ranking");
    let corr = synthetic_correlations(1024);
    g.bench_function("lazy_top5", |b| {
        b.iter_batched(
            || corr.clone(),
            |mut c| {
                let mut prefix = rank_top(&mut c, 5);
                prefix.get(4)
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("eager_full_sort_baseline", |b| {
        b.iter_batched(|| corr.clone(), rank, BatchSize::SmallInput)
    });
    g.finish();
}

fn bench_budgeted_replay(c: &mut Criterion) {
    let deployment = build_recommender(DeployScale::quick());
    let policy = ExecutionPolicy::budgeted(5);
    let mut g = c.benchmark_group("budgeted_replay");
    g.bench_function("current_lazy_streaming", |b| {
        b.iter(|| {
            for req in &deployment.requests {
                for comp in deployment.service.components() {
                    std::hint::black_box(comp.execute(&req.active, &policy, Instant::now()));
                }
            }
        })
    });
    g.bench_function("eager_allocating_baseline", |b| {
        b.iter(|| {
            for req in &deployment.requests {
                for comp in deployment.service.components() {
                    std::hint::black_box(execute_eager(comp, &AllocCfService, &req.active, 5));
                }
            }
        })
    });
    g.finish();
}

fn bench_batched_serve(c: &mut Criterion) {
    let deployment = build_recommender(DeployScale::quick());
    let policy = ExecutionPolicy::budgeted(5);
    let batch: Vec<_> = (0..8)
        .map(|i| {
            deployment.requests[i % deployment.requests.len()]
                .active
                .clone()
        })
        .collect();
    let mut g = c.benchmark_group("batched_serve");
    g.bench_function("serve_batch_8", |b| {
        b.iter(|| std::hint::black_box(deployment.service.serve_batch(&batch, &policy)))
    });
    g.bench_function("sequential_serve_baseline", |b| {
        b.iter(|| {
            for req in &batch {
                std::hint::black_box(deployment.service.serve(req, &policy));
            }
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_pearson,
    bench_ranking,
    bench_budgeted_replay,
    bench_batched_serve
);
criterion_main!(benches);

//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! 1. **Synopsis size ratio** — a bigger synopsis improves the initial
//!    result and correlation estimates but costs more per request
//!    (paper §2.3: ~100× smaller; they study load-adaptive sizing in
//!    follow-up work).
//! 2. **`i_max` cap** — the top-40% cut-off the search engine uses.
//! 3. **Reissue trigger percentile** — the 95th-percentile setting.

use at_core::{Component, ExecutionPolicy};
use at_linalg::svd::SvdConfig;
use at_recommender::{rating_matrix, ActiveUser, CfService};
use at_sim::{run_fixed_rate, Technique};
use at_synopsis::{AggregationMode, SparseRow, SynopsisConfig};
use at_workloads::{RatingsConfig, RatingsDataset};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Instant;

fn bench_synopsis_ratio(c: &mut Criterion) {
    let n = 1200usize;
    let data = RatingsDataset::generate(RatingsConfig {
        n_users: n,
        n_items: 150,
        ratings_per_user: 40,
        ..RatingsConfig::small()
    });
    let matrix = rating_matrix(n, 150, &data.ratings);
    let profile: Vec<(u32, f64)> = data
        .ratings
        .iter()
        .filter(|r| r.user == 0)
        .map(|r| (r.item, r.stars))
        .collect();
    let active = ActiveUser::new(SparseRow::from_pairs(profile), vec![1, 2, 3]);

    let mut group = c.benchmark_group("ablation_synopsis_ratio");
    group.sample_size(10);
    for ratio in [10usize, 50, 200] {
        let cfg = SynopsisConfig {
            svd: SvdConfig::default().with_epochs(25),
            size_ratio: ratio,
            ..SynopsisConfig::default()
        };
        let (component, _) =
            Component::build(matrix.clone(), AggregationMode::Mean, cfg, CfService);
        group.bench_with_input(
            BenchmarkId::new("synopsis_pass", ratio),
            &component,
            |b, comp| {
                b.iter(|| comp.execute(&active, &ExecutionPolicy::SynopsisOnly, Instant::now()))
            },
        );
    }
    group.finish();
}

fn bench_imax(c: &mut Criterion) {
    let cfg = at_sim::SimConfig {
        n_components: 12,
        n_nodes: 8,
        sample_every: 40,
        ..at_sim::SimConfig::default()
    };
    let mut group = c.benchmark_group("ablation_imax");
    group.sample_size(10);
    for imax in [3usize, 12, 30] {
        group.bench_with_input(BenchmarkId::new("at_cell_rate60", imax), &imax, |b, &m| {
            b.iter(|| {
                run_fixed_rate(
                    60.0,
                    10.0,
                    Technique::AccuracyTrader {
                        deadline_s: 0.1,
                        imax: Some(m),
                    },
                    &cfg,
                )
                .latencies
                .p999_ms()
            })
        });
    }
    group.finish();
}

fn bench_reissue_percentile(c: &mut Criterion) {
    let cfg = at_sim::SimConfig {
        n_components: 12,
        n_nodes: 8,
        ..at_sim::SimConfig::default()
    };
    let mut group = c.benchmark_group("ablation_reissue_percentile");
    group.sample_size(10);
    for pct in [80.0f64, 95.0, 99.0] {
        group.bench_with_input(
            BenchmarkId::new("reissue_cell_rate40", pct as u64),
            &pct,
            |b, &p| {
                b.iter(|| {
                    run_fixed_rate(
                        40.0,
                        10.0,
                        Technique::Reissue {
                            trigger_percentile: p,
                        },
                        &cfg,
                    )
                    .latencies
                    .p999_ms()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_synopsis_ratio,
    bench_imax,
    bench_reissue_percentile
);
criterion_main!(benches);

//! Figure 3: incremental synopsis updating time for i% added and i%
//! changed data points (both update categories, i ∈ {1, 5, 10}).

use at_linalg::svd::SvdConfig;
use at_recommender::rating_matrix;
use at_synopsis::{AggregationMode, DataUpdate, SparseRow, SynopsisConfig, SynopsisStore};
use at_workloads::{RatingsConfig, RatingsDataset};
use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};

fn bench_updates(c: &mut Criterion) {
    let n = 1500usize;
    let data = RatingsDataset::generate(RatingsConfig {
        n_users: n,
        n_items: 200,
        ratings_per_user: 50,
        ..RatingsConfig::small()
    });
    let store_rows = rating_matrix(n, 200, &data.ratings);
    let cfg = SynopsisConfig {
        svd: SvdConfig::default().with_epochs(30),
        size_ratio: 50,
        ..SynopsisConfig::default()
    };
    let (store, _) = SynopsisStore::build(&store_rows, AggregationMode::Mean, cfg);

    let mut group = c.benchmark_group("fig3_synopsis_update");
    group.sample_size(10);
    for pct in [1usize, 5, 10] {
        let count = n * pct / 100;
        group.bench_with_input(BenchmarkId::new("add", pct), &count, |b, &count| {
            b.iter_batched(
                || {
                    let updates: Vec<DataUpdate> = (0..count)
                        .map(|i| DataUpdate::Add(store_rows.row((i * 7 % n) as u64).clone()))
                        .collect();
                    (store.clone(), store_rows.clone(), updates)
                },
                |(mut s, mut d, updates)| s.apply_updates(&mut d, updates),
                BatchSize::SmallInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("change", pct), &count, |b, &count| {
            b.iter_batched(
                || {
                    let updates: Vec<DataUpdate> = (0..count)
                        .map(|i| {
                            let id = (i * 11 % n) as u64;
                            let row = store_rows.row(id);
                            DataUpdate::Change {
                                id,
                                row: SparseRow::from_pairs(
                                    row.iter().map(|(c, v)| (c, (v + 1.0).min(5.0))).collect(),
                                ),
                            }
                        })
                        .collect();
                    (store.clone(), store_rows.clone(), updates)
                },
                |(mut s, mut d, updates)| s.apply_updates(&mut d, updates),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_updates);
criterion_main!(benches);

//! Figures 6 & 8: diurnal accuracy-loss pipeline — simulate one hour of
//! the search workload, then replay sampled budgets against the real
//! search deployment for both approximate techniques.

use at_bench::{build_search, search_accuracy_loss, Budget, DeployScale};
use at_sim::{run_hour_window, CostModel, Technique};
use at_workloads::DiurnalPattern;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_accuracy_series(c: &mut Criterion) {
    let pattern = DiurnalPattern::sogou_like(40.0);
    let deployment = build_search(DeployScale::quick());
    let cfg = at_sim::SimConfig {
        n_components: 12,
        n_nodes: 8,
        sample_every: 40,
        ..at_sim::SimConfig::default()
    };

    let mut group = c.benchmark_group("fig6_fig8_accuracy");
    group.sample_size(10);
    group.bench_function("partial_hour22", |b| {
        b.iter(|| {
            let sim = run_hour_window(
                &pattern,
                22,
                60.0,
                Technique::Partial { deadline_s: 0.1 },
                &cfg,
            );
            search_accuracy_loss(&deployment, &sim.samples, |s| {
                Budget::Mask(s.made_deadline.as_ref().expect("mask"))
            })
        })
    });
    group.bench_function("accuracy_trader_hour22", |b| {
        b.iter(|| {
            let sim = run_hour_window(
                &pattern,
                22,
                60.0,
                Technique::AccuracyTrader {
                    deadline_s: 0.1,
                    imax: Some(12),
                },
                &cfg,
            );
            search_accuracy_loss(&deployment, &sim.samples, |s| Budget::Sets {
                sets: s.sets_processed.as_ref().expect("sets"),
                sim_total: CostModel::default().n_sets,
                imax_frac: Some(0.4),
            })
        })
    });
    group.finish();
}

criterion_group!(benches, bench_accuracy_series);
criterion_main!(benches);

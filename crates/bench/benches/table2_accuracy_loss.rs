//! Table 2: accuracy-loss evaluation pipeline — the simulate-then-replay
//! path that produces each Partial-execution vs. AccuracyTrader cell.

use at_bench::{build_recommender, rec_accuracy_loss, Budget, DeployScale, ExpScale};
use at_sim::{run_fixed_rate, CostModel, Technique};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_table2(c: &mut Criterion) {
    let scale = ExpScale::quick();
    let deployment = build_recommender(DeployScale::quick());
    let cfg = at_sim::SimConfig {
        n_components: scale.table_components,
        n_nodes: scale.n_nodes,
        sample_every: scale.sample_every,
        ..at_sim::SimConfig::default()
    };
    let mut group = c.benchmark_group("table2_accuracy_loss");
    group.sample_size(10);
    for rate in [20.0f64, 100.0] {
        group.bench_with_input(
            BenchmarkId::new("partial_cell", rate as u64),
            &rate,
            |b, &rate| {
                b.iter(|| {
                    let sim =
                        run_fixed_rate(rate, 10.0, Technique::Partial { deadline_s: 0.1 }, &cfg);
                    rec_accuracy_loss(&deployment, &sim.samples, |s| {
                        Budget::Mask(s.made_deadline.as_ref().expect("mask"))
                    })
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("accuracy_trader_cell", rate as u64),
            &rate,
            |b, &rate| {
                b.iter(|| {
                    let sim = run_fixed_rate(
                        rate,
                        10.0,
                        Technique::AccuracyTrader {
                            deadline_s: 0.1,
                            imax: None,
                        },
                        &cfg,
                    );
                    rec_accuracy_loss(&deployment, &sim.samples, |s| Budget::Sets {
                        sets: s.sets_processed.as_ref().expect("sets"),
                        sim_total: CostModel::default().n_sets,
                        imax_frac: None,
                    })
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);

//! AccuracyTrader adapter for the search engine.
//!
//! Maps the paper's search semantics onto the [`ApproximateService`] hooks:
//!
//! * **Correlation estimate** `c_i` — the similarity score of an
//!   *aggregated web page* (the merged contents of its member pages) to the
//!   query terms; a higher aggregated score means the group's original
//!   pages are more likely to contain actual top-10 pages.
//! * **Initial result** — an empty top-k: aggregated pages are not
//!   returnable results themselves, so stage 1's output is the *ranking*
//!   (the simulator/deadline loop guarantees improvement begins
//!   immediately with the best-ranked set).
//! * **Improvement** — score the original pages of one ranked set exactly
//!   and fold them into the top-k heap.

use at_core::{ApproximateService, ComposableService, Correlation, Ctx, Fnv1a, RouteKey};
use at_rtree::NodeId;
use at_synopsis::RowStore;

use crate::engine::search_exact;
use crate::index::InvertedIndex;
use crate::topk::TopK;

/// A search request: query terms, sorted ascending.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SearchRequest {
    /// Sorted, deduplicated term ids.
    pub terms: Vec<u32>,
}

impl SearchRequest {
    /// Build a request; sorts and dedups.
    pub fn new(mut terms: Vec<u32>) -> Self {
        terms.sort_unstable();
        terms.dedup();
        SearchRequest { terms }
    }
}

impl From<&at_workloads::Query> for SearchRequest {
    fn from(q: &at_workloads::Query) -> Self {
        SearchRequest::new(q.terms.clone())
    }
}

/// Stable placement hash over the (sorted, deduplicated) terms — exactly
/// what `Eq` compares — so repeated queries collapse on one worker under
/// hash-affinity routing.
impl RouteKey for SearchRequest {
    fn route_key(&self) -> u64 {
        let mut h = Fnv1a::new();
        for &term in &self.terms {
            h.write_u32(term);
        }
        h.finish()
    }
}

/// The Lucene-style search service, AccuracyTrader-enabled. Owns the
/// component's inverted index (rebuild with [`SearchService::rebuild`]
/// after input-data updates).
///
/// Batch-aware: `process_synopsis_batch` scores each aggregated page
/// against every query of a batch in one shared synopsis pass, and
/// `process_synopsis_into` resets recycled [`TopK`] heaps in place
/// ([`TopK::reset`]) so pooled serving allocates nothing for outputs.
#[derive(Clone, Debug)]
pub struct SearchService {
    index: InvertedIndex,
    k: usize,
}

impl SearchService {
    /// Build the inverted index over a component's pages; results are
    /// top-`k` lists (paper: k = 10).
    pub fn build(pages: &RowStore, k: usize) -> Self {
        SearchService {
            index: InvertedIndex::build(pages),
            k,
        }
    }

    /// Re-index after the page set changed.
    pub fn rebuild(&mut self, pages: &RowStore) {
        self.index = InvertedIndex::build(pages);
    }

    /// The component's inverted index.
    pub fn index(&self) -> &InvertedIndex {
        &self.index
    }

    /// Result-list size `k`.
    pub fn k(&self) -> usize {
        self.k
    }
}

impl ApproximateService for SearchService {
    type Request = SearchRequest;
    type Output = TopK;

    fn process_synopsis(
        &self,
        ctx: Ctx<'_>,
        req: &SearchRequest,
        corr: &mut Vec<Correlation>,
    ) -> Self::Output {
        let mut out = TopK::new(self.k);
        self.process_synopsis_into(ctx, req, corr, &mut out);
        out
    }

    fn process_synopsis_into(
        &self,
        ctx: Ctx<'_>,
        req: &SearchRequest,
        corr: &mut Vec<Correlation>,
        out: &mut Self::Output,
    ) {
        out.reset(self.k);
        corr.reserve(ctx.store.synopsis().len());
        corr.extend(ctx.store.synopsis().iter().map(|p| Correlation {
            node: p.node,
            score: self.index.score_row(p.info.iter(), &req.terms),
        }));
    }

    fn process_synopsis_batch(
        &self,
        ctx: Ctx<'_>,
        reqs: &[SearchRequest],
        corrs: &mut [Vec<Correlation>],
        outs: &mut Vec<Self::Output>,
    ) {
        at_core::prepare_outputs(
            outs,
            reqs.len(),
            |out, _| out.reset(self.k),
            |_| TopK::new(self.k),
        );
        let points = ctx.store.synopsis().points_with_stats();
        for corr in corrs.iter_mut() {
            corr.reserve(points.len());
        }
        // Cache-tiled pass over the synopsis: the aggregated pages stream
        // past one *tile* of queries at a time, so the tile's term lists
        // and correlation tails stay L1-resident while each merged row is
        // hot. Every query still sees every point in node-id order — the
        // per-request op order matches `process_synopsis_into` exactly,
        // tiling moves no FP bits.
        let total_nnz: usize = points.iter().map(|(_, s)| s.nnz).sum();
        let tile = at_core::batch_tile_span(reqs.len(), total_nnz / points.len().max(1));
        let mut start = 0usize;
        while start < reqs.len() {
            let end = (start + tile).min(reqs.len());
            for (p, _) in points {
                for (req, corr) in reqs[start..end].iter().zip(corrs[start..end].iter_mut()) {
                    corr.push(Correlation {
                        node: p.node,
                        score: self.index.score_row(p.info.iter(), &req.terms),
                    });
                }
            }
            start = end;
        }
    }

    fn improve(
        &self,
        ctx: Ctx<'_>,
        req: &SearchRequest,
        out: &mut Self::Output,
        _node: NodeId,
        members: &[u64],
    ) {
        for &doc in members {
            let score = self
                .index
                .score_row(ctx.dataset.row(doc).iter(), &req.terms);
            if score > 0.0 {
                out.push(doc, score);
            }
        }
    }

    fn process_exact(&self, _ctx: Ctx<'_>, req: &SearchRequest) -> Self::Output {
        search_exact(&self.index, &req.terms, self.k)
    }
}

/// Stride namespacing component-local document ids into the global id
/// space: global id = `component * COMPONENT_STRIDE + local doc`.
pub const COMPONENT_STRIDE: u64 = 1 << 32;

impl ComposableService for SearchService {
    type Response = TopK;

    /// Merge per-component top-k heaps into the global top-k — the paper's
    /// composing component for the search engine. Document ids are
    /// namespaced by component position via [`COMPONENT_STRIDE`].
    fn compose(&self, _req: &SearchRequest, parts: &[TopK]) -> TopK {
        let mut merged = TopK::new(self.k);
        for (component, part) in parts.iter().enumerate() {
            for h in part.sorted() {
                merged.push(component as u64 * COMPONENT_STRIDE + h.doc, h.score);
            }
        }
        merged
    }
}

/// Figure 4(b) analysis: rank the aggregated pages by similarity to `req`,
/// split into `n_sections`, and return each section's percentage of the
/// *actual top-k* pages (from exact search) whose group falls in that
/// section.
pub fn section_top_k_coverage(
    ctx: Ctx<'_>,
    service: &SearchService,
    req: &SearchRequest,
    n_sections: usize,
) -> Vec<f64> {
    let actual: Vec<u64> = service.process_exact(ctx, req).doc_ids();
    if actual.is_empty() {
        return vec![0.0; n_sections];
    }
    let mut corr = Vec::new();
    service.process_synopsis(ctx, req, &mut corr);
    let ranked = at_core::rank(corr);
    let sections = at_core::sections(&ranked, n_sections);
    sections
        .iter()
        .map(|sec| {
            let mut hits = 0usize;
            for c in *sec {
                let members = ctx.store.index().members(c.node).expect("indexed node");
                hits += actual
                    .iter()
                    .filter(|d| members.binary_search(d).is_ok())
                    .count();
            }
            hits as f64 / actual.len() as f64 * 100.0
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accuracy::topk_overlap;
    use at_core::{Component, ExecutionPolicy};
    use at_linalg::svd::SvdConfig;
    use at_synopsis::{AggregationMode, SparseRow, SynopsisConfig};
    use at_workloads::{Corpus, CorpusConfig, QueryGenerator};
    use std::time::Instant;

    fn component() -> (Component<SearchService>, Corpus) {
        let corpus = Corpus::generate(CorpusConfig::small());
        let mut pages = RowStore::new(corpus.config.vocab);
        for d in &corpus.docs {
            pages.push_row(SparseRow::from_pairs(d.terms.clone()));
        }
        let service = SearchService::build(&pages, 10);
        let cfg = SynopsisConfig {
            svd: SvdConfig::default().with_epochs(20),
            size_ratio: 12,
            ..SynopsisConfig::default()
        };
        let (c, _) = Component::build(pages, AggregationMode::Merge, cfg, service);
        (c, corpus)
    }

    fn some_query(corpus: &Corpus, seed: u64) -> SearchRequest {
        let mut generator = QueryGenerator::new(corpus, seed);
        SearchRequest::from(&generator.next_query(corpus))
    }

    #[test]
    fn full_budget_matches_exact() {
        let (c, corpus) = component();
        for seed in 0..5u64 {
            let req = some_query(&corpus, seed);
            let approx = c
                .execute(&req, &ExecutionPolicy::budgeted(usize::MAX), Instant::now())
                .output;
            let exact = c
                .execute(&req, &ExecutionPolicy::Exact, Instant::now())
                .output;
            assert_eq!(
                approx.doc_ids(),
                exact.doc_ids(),
                "full improvement must equal exact search"
            );
        }
    }

    #[test]
    fn zero_budget_returns_empty_topk() {
        let (c, corpus) = component();
        let req = some_query(&corpus, 1);
        let o = c.execute(&req, &ExecutionPolicy::SynopsisOnly, Instant::now());
        assert!(o.output.is_empty());
        assert_eq!(o.sets_processed, 0);
    }

    #[test]
    fn overlap_grows_with_budget() {
        let (c, corpus) = component();
        let budgets = [1usize, 3, usize::MAX];
        let mut overlaps = vec![0.0; budgets.len()];
        for seed in 0..8u64 {
            let req = some_query(&corpus, seed);
            let actual = c
                .execute(&req, &ExecutionPolicy::Exact, Instant::now())
                .output
                .doc_ids();
            for (i, &b) in budgets.iter().enumerate() {
                let got = c
                    .execute(&req, &ExecutionPolicy::budgeted(b), Instant::now())
                    .output
                    .doc_ids();
                overlaps[i] += topk_overlap(&actual, &got);
            }
        }
        assert!(
            overlaps[2] >= overlaps[1] && overlaps[1] >= overlaps[0],
            "overlap must not shrink with budget: {overlaps:?}"
        );
        assert!(
            (overlaps[2] - 8.0).abs() < 1e-9,
            "full budget overlap must be total"
        );
    }

    #[test]
    fn few_top_sets_capture_most_top10() {
        // The heart of the paper's search result: a minority of top-ranked
        // sets contains the large majority of actual top-10 pages.
        let (c, corpus) = component();
        let n_groups = c.store().synopsis().len();
        let budget = n_groups.div_ceil(2); // top 50% of sets
        let mut total_overlap = 0.0;
        let mut n = 0;
        for seed in 0..20u64 {
            let req = some_query(&corpus, seed);
            let actual = c
                .execute(&req, &ExecutionPolicy::Exact, Instant::now())
                .output
                .doc_ids();
            if actual.is_empty() {
                continue;
            }
            let got = c
                .execute(&req, &ExecutionPolicy::budgeted(budget), Instant::now())
                .output
                .doc_ids();
            total_overlap += topk_overlap(&actual, &got);
            n += 1;
        }
        let mean = total_overlap / n as f64;
        assert!(
            mean > 0.7,
            "top 50% of ranked sets should capture most top-10 pages, got {mean}"
        );
    }

    #[test]
    fn section_coverage_concentrates_in_top_sections() {
        let (c, corpus) = component();
        let mut acc = vec![0.0; 4];
        let mut n = 0;
        for seed in 0..15u64 {
            let req = some_query(&corpus, seed);
            let cov = section_top_k_coverage(c.ctx(), c.service(), &req, 4);
            for (a, v) in acc.iter_mut().zip(&cov) {
                *a += v;
            }
            n += 1;
        }
        for a in &mut acc {
            *a /= n as f64;
        }
        assert!(
            acc[0] > acc[3],
            "top section must hold more of the actual top-10: {acc:?}"
        );
        assert!(acc[0] + acc[1] > 50.0, "top half should dominate: {acc:?}");
    }

    #[test]
    fn batched_stage1_is_bit_identical_to_per_request() {
        let (c, corpus) = component();
        let svc = c.service();
        let reqs: Vec<SearchRequest> = (0..4u64).map(|s| some_query(&corpus, s)).collect();
        let mut corrs = vec![Vec::new(); reqs.len()];
        // Seed one recycled heap (stale contents) to prove the reset.
        let mut stale = TopK::new(3);
        stale.push(42, 9.0);
        let mut outs = vec![stale];
        svc.process_synopsis_batch(c.ctx(), &reqs, &mut corrs, &mut outs);
        assert_eq!(outs.len(), reqs.len());
        for ((req, corr), out) in reqs.iter().zip(&corrs).zip(&outs) {
            let mut want_corr = Vec::new();
            let want_out = svc.process_synopsis(c.ctx(), req, &mut want_corr);
            assert_eq!(corr.len(), want_corr.len());
            for (a, b) in corr.iter().zip(&want_corr) {
                assert_eq!(a.node, b.node);
                assert_eq!(
                    a.score.to_bits(),
                    b.score.to_bits(),
                    "scores must be bit-identical"
                );
            }
            assert!(out.is_empty(), "stage-1 top-k starts empty");
            assert_eq!(out.k(), want_out.k(), "recycled heap reset to service k");
        }
    }

    #[test]
    fn request_normalization() {
        let r = SearchRequest::new(vec![5, 1, 5, 3]);
        assert_eq!(r.terms, vec![1, 3, 5]);
    }
}

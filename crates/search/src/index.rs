//! The inverted index — the search engine's offline artifact (§3.2: "the
//! web crawler crawls the web pages and builds the inverted index").
//!
//! Postings are term → `(doc, tf)` lists; document norms are precomputed
//! for length normalization. The index serves the *exact* processing path;
//! the synopsis path scores merged aggregated pages with the same statistics
//! so correlation estimates are on the same scale as real scores.

use at_synopsis::RowStore;

/// Inverted index over one component's page subset.
#[derive(Clone, Debug)]
pub struct InvertedIndex {
    n_docs: usize,
    /// postings[term] = (doc, term frequency), doc ascending.
    postings: Vec<Vec<(u64, f64)>>,
    /// Per-document length norm: sqrt(total term occurrences).
    doc_norm: Vec<f64>,
}

impl InvertedIndex {
    /// Build from a page store (rows = pages, cols = terms, vals = counts).
    pub fn build(pages: &RowStore) -> Self {
        let mut postings: Vec<Vec<(u64, f64)>> = vec![Vec::new(); pages.feature_dim()];
        let mut doc_norm = Vec::with_capacity(pages.len());
        for id in pages.ids() {
            let row = pages.row(id);
            let mut len = 0.0;
            for (t, c) in row.iter() {
                postings[t as usize].push((id, c));
                len += c;
            }
            doc_norm.push(len.sqrt().max(1.0));
        }
        InvertedIndex {
            n_docs: pages.len(),
            postings,
            doc_norm,
        }
    }

    /// Number of indexed documents.
    pub fn n_docs(&self) -> usize {
        self.n_docs
    }

    /// Document frequency of `term`.
    pub fn df(&self, term: u32) -> usize {
        self.postings.get(term as usize).map_or(0, |p| p.len())
    }

    /// Inverse document frequency: `ln(1 + N / df)`; 0 for unseen terms.
    pub fn idf(&self, term: u32) -> f64 {
        let df = self.df(term);
        if df == 0 {
            0.0
        } else {
            (1.0 + self.n_docs as f64 / df as f64).ln()
        }
    }

    /// Posting list of `term` (doc ascending).
    pub fn postings(&self, term: u32) -> &[(u64, f64)] {
        self.postings.get(term as usize).map_or(&[], Vec::as_slice)
    }

    /// A document's length norm.
    pub fn doc_norm(&self, doc: u64) -> f64 {
        self.doc_norm[doc as usize]
    }

    /// Per-term score contribution: sublinear tf × idf.
    pub fn tf_idf(&self, tf: f64, term: u32) -> f64 {
        if tf <= 0.0 {
            0.0
        } else {
            (1.0 + tf.ln()) * self.idf(term)
        }
    }

    /// Score an arbitrary term-count row against query `terms` using this
    /// index's corpus statistics (used for synopsis/aggregated pages and
    /// for improving with original rows).
    pub fn score_row<'a>(&self, row: impl Iterator<Item = (u32, f64)> + 'a, terms: &[u32]) -> f64 {
        let mut score = 0.0;
        let mut len = 0.0;
        for (t, c) in row {
            len += c;
            if terms.binary_search(&t).is_ok() {
                score += self.tf_idf(c, t);
            }
        }
        score / len.sqrt().max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use at_synopsis::SparseRow;

    fn pages() -> RowStore {
        let mut s = RowStore::new(6);
        // doc 0: terms 0,1   doc 1: terms 1,2,2   doc 2: term 5 x4
        s.push_row(SparseRow::from_pairs(vec![(0, 1.0), (1, 1.0)]));
        s.push_row(SparseRow::from_pairs(vec![(1, 1.0), (2, 2.0)]));
        s.push_row(SparseRow::from_pairs(vec![(5, 4.0)]));
        s
    }

    #[test]
    fn build_statistics() {
        let idx = InvertedIndex::build(&pages());
        assert_eq!(idx.n_docs(), 3);
        assert_eq!(idx.df(1), 2);
        assert_eq!(idx.df(5), 1);
        assert_eq!(idx.df(4), 0);
        assert_eq!(idx.idf(4), 0.0);
        assert!(idx.idf(5) > idx.idf(1), "rarer terms weigh more");
    }

    #[test]
    fn postings_sorted_by_doc() {
        let idx = InvertedIndex::build(&pages());
        let p = idx.postings(1);
        assert_eq!(p, &[(0, 1.0), (1, 1.0)]);
    }

    #[test]
    fn doc_norms_reflect_length() {
        let idx = InvertedIndex::build(&pages());
        assert!((idx.doc_norm(0) - 2f64.sqrt()).abs() < 1e-12);
        assert!((idx.doc_norm(2) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn score_row_matches_manual() {
        let idx = InvertedIndex::build(&pages());
        let row = vec![(1u32, 1.0), (2u32, 2.0)];
        let terms = vec![2u32];
        let got = idx.score_row(row.into_iter(), &terms);
        let want = (1.0 + 2f64.ln()) * idx.idf(2) / 3f64.sqrt();
        assert!((got - want).abs() < 1e-12);
    }

    #[test]
    fn score_row_no_match_is_zero() {
        let idx = InvertedIndex::build(&pages());
        assert_eq!(idx.score_row(vec![(0u32, 1.0)].into_iter(), &[5]), 0.0);
    }
}

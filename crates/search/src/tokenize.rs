//! Tokenization and vocabulary management for text pages.
//!
//! The synthetic corpus already speaks term ids, but real deployments (and
//! our text-based example) start from strings: `Vocabulary` interns
//! lowercase alphanumeric tokens into dense `u32` ids — the "vocabulary
//! containing all the words in the crawled web pages" of §3.2.

use std::collections::HashMap;

/// Lowercase alphanumeric tokens of `text`, in order.
pub fn tokenize(text: &str) -> Vec<String> {
    text.split(|c: char| !c.is_alphanumeric())
        .filter(|t| !t.is_empty())
        .map(|t| t.to_lowercase())
        .collect()
}

/// An interning vocabulary: token string → dense term id.
#[derive(Clone, Debug, Default)]
pub struct Vocabulary {
    by_token: HashMap<String, u32>,
    tokens: Vec<String>,
}

impl Vocabulary {
    /// Empty vocabulary.
    pub fn new() -> Self {
        Vocabulary::default()
    }

    /// Intern `token`, returning its id (existing or fresh).
    pub fn intern(&mut self, token: &str) -> u32 {
        if let Some(&id) = self.by_token.get(token) {
            return id;
        }
        let id = u32::try_from(self.tokens.len()).expect("vocabulary overflow");
        self.by_token.insert(token.to_string(), id);
        self.tokens.push(token.to_string());
        id
    }

    /// Look up a token without interning.
    pub fn get(&self, token: &str) -> Option<u32> {
        self.by_token.get(token).copied()
    }

    /// The token behind an id.
    pub fn token(&self, id: u32) -> Option<&str> {
        self.tokens.get(id as usize).map(String::as_str)
    }

    /// Number of interned tokens.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// Tokenize `text` and intern every token, returning `(term, count)`
    /// pairs sorted by term — a page's feature row.
    pub fn index_text(&mut self, text: &str) -> Vec<(u32, f64)> {
        let mut counts: std::collections::BTreeMap<u32, f64> = std::collections::BTreeMap::new();
        for tok in tokenize(text) {
            *counts.entry(self.intern(&tok)).or_insert(0.0) += 1.0;
        }
        counts.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_splits_and_lowercases() {
        assert_eq!(
            tokenize("Hello, World! rust-lang 2024"),
            vec!["hello", "world", "rust", "lang", "2024"]
        );
        assert!(tokenize("  ,,, ").is_empty());
    }

    #[test]
    fn intern_is_idempotent() {
        let mut v = Vocabulary::new();
        let a = v.intern("apple");
        let b = v.intern("banana");
        assert_ne!(a, b);
        assert_eq!(v.intern("apple"), a);
        assert_eq!(v.len(), 2);
        assert_eq!(v.token(a), Some("apple"));
        assert_eq!(v.get("cherry"), None);
    }

    #[test]
    fn index_text_counts_terms() {
        let mut v = Vocabulary::new();
        let row = v.index_text("the cat and the hat");
        let the = v.get("the").unwrap();
        let entry = row.iter().find(|(t, _)| *t == the).unwrap();
        assert_eq!(entry.1, 2.0);
        assert_eq!(row.len(), 4); // the, cat, and, hat
        for w in row.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
    }
}

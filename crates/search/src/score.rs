//! Alternative similarity functions.
//!
//! The default index scoring is Lucene-classic sublinear tf-idf with length
//! normalization ([`crate::InvertedIndex::score_row`]). This module adds
//! **BM25**, the standard probabilistic ranking function, as a drop-in
//! alternative — useful for checking that AccuracyTrader's correlation
//! estimation is not an artifact of one scoring formula (the framework only
//! assumes "higher aggregated score → more related originals").

use crate::index::InvertedIndex;

/// BM25 parameters.
#[derive(Clone, Copy, Debug)]
pub struct Bm25Params {
    /// Term-frequency saturation (typical 1.2–2.0).
    pub k1: f64,
    /// Length-normalization strength (typical 0.75).
    pub b: f64,
}

impl Default for Bm25Params {
    fn default() -> Self {
        Bm25Params { k1: 1.2, b: 0.75 }
    }
}

/// BM25 scorer bound to an index's corpus statistics.
#[derive(Clone, Debug)]
pub struct Bm25 {
    params: Bm25Params,
    avg_len: f64,
}

impl Bm25 {
    /// Build a scorer over `index`'s statistics.
    pub fn new(index: &InvertedIndex, params: Bm25Params) -> Self {
        // doc_norm stores sqrt(len); average the squared norms.
        let n = index.n_docs().max(1);
        let total: f64 = (0..n as u64).map(|d| index.doc_norm(d).powi(2)).sum();
        Bm25 {
            params,
            avg_len: (total / n as f64).max(1.0),
        }
    }

    /// BM25 idf: `ln(1 + (N - df + 0.5) / (df + 0.5))`.
    pub fn idf(&self, index: &InvertedIndex, term: u32) -> f64 {
        let n = index.n_docs() as f64;
        let df = index.df(term) as f64;
        if df == 0.0 {
            0.0
        } else {
            (1.0 + (n - df + 0.5) / (df + 0.5)).ln()
        }
    }

    /// Score an arbitrary term-count row against sorted query `terms`.
    pub fn score_row<'a>(
        &self,
        index: &InvertedIndex,
        row: impl Iterator<Item = (u32, f64)> + 'a,
        terms: &[u32],
    ) -> f64 {
        let Bm25Params { k1, b } = self.params;
        let mut len = 0.0;
        let mut matched: Vec<(u32, f64)> = Vec::new();
        for (t, c) in row {
            len += c;
            if terms.binary_search(&t).is_ok() {
                matched.push((t, c));
            }
        }
        let norm = 1.0 - b + b * len / self.avg_len;
        matched
            .into_iter()
            .map(|(t, tf)| self.idf(index, t) * (tf * (k1 + 1.0)) / (tf + k1 * norm))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use at_synopsis::{RowStore, SparseRow};

    fn corpus() -> (RowStore, InvertedIndex) {
        let mut s = RowStore::new(8);
        s.push_row(SparseRow::from_pairs(vec![(3, 5.0)]));
        s.push_row(SparseRow::from_pairs(vec![(3, 1.0), (1, 6.0), (2, 6.0)]));
        s.push_row(SparseRow::from_pairs(vec![(5, 2.0)]));
        let idx = InvertedIndex::build(&s);
        (s, idx)
    }

    #[test]
    fn focused_doc_outscores_diluted() {
        let (s, idx) = corpus();
        let bm = Bm25::new(&idx, Bm25Params::default());
        let focused = bm.score_row(&idx, s.row(0).iter(), &[3]);
        let diluted = bm.score_row(&idx, s.row(1).iter(), &[3]);
        assert!(focused > diluted, "{focused} !> {diluted}");
    }

    #[test]
    fn no_match_scores_zero() {
        let (s, idx) = corpus();
        let bm = Bm25::new(&idx, Bm25Params::default());
        assert_eq!(bm.score_row(&idx, s.row(2).iter(), &[3]), 0.0);
    }

    #[test]
    fn rare_terms_weigh_more() {
        let (_, idx) = corpus();
        let bm = Bm25::new(&idx, Bm25Params::default());
        // term 5 appears in 1 doc, term 3 in 2 docs.
        assert!(bm.idf(&idx, 5) > bm.idf(&idx, 3));
        assert_eq!(bm.idf(&idx, 7), 0.0, "unseen term has zero idf");
    }

    #[test]
    fn tf_saturates() {
        let (_, idx) = corpus();
        let bm = Bm25::new(&idx, Bm25Params::default());
        let s1 = bm.score_row(&idx, vec![(3u32, 1.0)].into_iter(), &[3]);
        let s10 = bm.score_row(&idx, vec![(3u32, 10.0)].into_iter(), &[3]);
        let s100 = bm.score_row(&idx, vec![(3u32, 100.0)].into_iter(), &[3]);
        assert!(s10 > s1);
        assert!(
            s100 - s10 < s10 - s1,
            "BM25 gain must saturate: {s1} {s10} {s100}"
        );
    }

    #[test]
    fn rankings_agree_with_tfidf_on_clear_cases() {
        // Both scorers must prefer the obviously-relevant page.
        let (s, idx) = corpus();
        let bm = Bm25::new(&idx, Bm25Params::default());
        let tfidf0 = idx.score_row(s.row(0).iter(), &[3]);
        let tfidf1 = idx.score_row(s.row(1).iter(), &[3]);
        let bm0 = bm.score_row(&idx, s.row(0).iter(), &[3]);
        let bm1 = bm.score_row(&idx, s.row(1).iter(), &[3]);
        assert_eq!(tfidf0 > tfidf1, bm0 > bm1);
    }
}

//! Bounded top-k result collection.
//!
//! Search results are the `k` highest-scoring pages (the paper's accuracy
//! metric is the overlap of retrieved vs. actual top 10). `TopK` keeps the
//! best `k` (score, id) pairs seen, with deterministic tie-breaking by id.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One scored document.
#[derive(Clone, Copy, Debug)]
pub struct Hit {
    /// Document id (component-local).
    pub doc: u64,
    /// Similarity score.
    pub score: f64,
}

// Equality must agree with `Ord` (which treats NaN as minus infinity), so
// it is defined through `cmp` rather than derived — a derived `PartialEq`
// would make a NaN hit unequal to itself while `cmp` calls it `Equal`.
impl PartialEq for Hit {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Hit {}

impl PartialOrd for Hit {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Hit {
    fn cmp(&self, other: &Self) -> Ordering {
        // Lower score = "smaller"; ties: higher doc id is smaller, so that
        // equal-score hits prefer the lower id deterministically. NaN
        // scores order as minus infinity (matching the ranking path's NaN
        // policy) instead of panicking the serving path.
        let a = if self.score.is_nan() {
            f64::NEG_INFINITY
        } else {
            self.score
        };
        let b = if other.score.is_nan() {
            f64::NEG_INFINITY
        } else {
            other.score
        };
        a.partial_cmp(&b)
            .expect("sanitised scores are never NaN")
            .then_with(|| other.doc.cmp(&self.doc))
    }
}

/// A bounded collection of the best `k` hits (min-heap of the current best).
#[derive(Clone, Debug)]
pub struct TopK {
    k: usize,
    heap: BinaryHeap<std::cmp::Reverse<Hit>>,
}

impl TopK {
    /// Collector for the best `k` hits.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "TopK: k must be >= 1");
        TopK {
            k,
            heap: BinaryHeap::with_capacity(k + 1),
        }
    }

    /// Capacity `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Reset for reuse as an empty collector of the best `k` hits —
    /// equivalent to `*self = TopK::new(k)` but keeping the heap's
    /// allocation, so pooled output buffers
    /// ([`at_core::OutputPool`]-style recycling) serve warm requests
    /// without touching the heap.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn reset(&mut self, k: usize) {
        assert!(k > 0, "TopK: k must be >= 1");
        self.k = k;
        self.heap.clear();
    }

    /// Number of hits currently held (≤ k).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no hit was offered yet.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Offer a hit; kept only if it beats the current k-th best. A NaN
    /// score ranks as minus infinity and is dropped outright — one bad
    /// similarity score must degrade that hit, not panic the serving path.
    pub fn push(&mut self, doc: u64, score: f64) {
        if score.is_nan() {
            return;
        }
        let hit = Hit { doc, score };
        if self.heap.len() < self.k {
            self.heap.push(std::cmp::Reverse(hit));
        } else if let Some(worst) = self.heap.peek() {
            if hit > worst.0 {
                self.heap.pop();
                self.heap.push(std::cmp::Reverse(hit));
            }
        }
    }

    /// Current k-th best score (the bar new hits must clear), if full.
    pub fn threshold(&self) -> Option<f64> {
        if self.heap.len() == self.k {
            self.heap.peek().map(|h| h.0.score)
        } else {
            None
        }
    }

    /// Absorb all hits of another collector.
    pub fn merge(&mut self, other: &TopK) {
        for h in &other.heap {
            self.push(h.0.doc, h.0.score);
        }
    }

    /// Hits sorted best-first.
    pub fn into_sorted(self) -> Vec<Hit> {
        let mut v: Vec<Hit> = self.heap.into_iter().map(|r| r.0).collect();
        v.sort_by(|a, b| b.cmp(a));
        v
    }

    /// Sorted copy without consuming.
    pub fn sorted(&self) -> Vec<Hit> {
        self.clone().into_sorted()
    }

    /// Doc ids best-first.
    pub fn doc_ids(&self) -> Vec<u64> {
        self.sorted().into_iter().map(|h| h.doc).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_best_k() {
        let mut t = TopK::new(3);
        for (d, s) in [(1u64, 0.5), (2, 0.9), (3, 0.1), (4, 0.7), (5, 0.3)] {
            t.push(d, s);
        }
        let ids = t.doc_ids();
        assert_eq!(ids, vec![2, 4, 1]);
    }

    #[test]
    fn fewer_than_k_keeps_all() {
        let mut t = TopK::new(10);
        t.push(1, 0.2);
        t.push(2, 0.8);
        assert_eq!(t.len(), 2);
        assert_eq!(t.doc_ids(), vec![2, 1]);
        assert_eq!(t.threshold(), None);
    }

    #[test]
    fn ties_break_by_lower_doc_id() {
        let mut t = TopK::new(2);
        t.push(9, 0.5);
        t.push(3, 0.5);
        t.push(7, 0.5);
        assert_eq!(t.doc_ids(), vec![3, 7]);
    }

    #[test]
    fn threshold_is_kth_score() {
        let mut t = TopK::new(2);
        t.push(1, 0.9);
        t.push(2, 0.4);
        assert_eq!(t.threshold(), Some(0.4));
        t.push(3, 0.6);
        assert_eq!(t.threshold(), Some(0.6));
    }

    #[test]
    fn merge_equals_joint_stream() {
        let hits = [
            (1u64, 0.3),
            (2, 0.8),
            (3, 0.5),
            (4, 0.9),
            (5, 0.1),
            (6, 0.7),
        ];
        let mut joint = TopK::new(3);
        for (d, s) in hits {
            joint.push(d, s);
        }
        let mut a = TopK::new(3);
        let mut b = TopK::new(3);
        for (i, (d, s)) in hits.into_iter().enumerate() {
            if i % 2 == 0 {
                a.push(d, s);
            } else {
                b.push(d, s);
            }
        }
        a.merge(&b);
        assert_eq!(a.doc_ids(), joint.doc_ids());
    }

    #[test]
    #[should_panic(expected = "k must be")]
    fn zero_k_panics() {
        TopK::new(0);
    }

    #[test]
    fn reset_behaves_like_fresh_collector() {
        let mut recycled = TopK::new(5);
        for d in 0..20u64 {
            recycled.push(d, d as f64);
        }
        recycled.reset(2);
        let mut fresh = TopK::new(2);
        for (d, s) in [(3u64, 0.5), (9, 0.9), (1, 0.1)] {
            recycled.push(d, s);
            fresh.push(d, s);
        }
        assert_eq!(recycled.k(), 2);
        assert_eq!(recycled.doc_ids(), fresh.doc_ids());
    }

    #[test]
    #[should_panic(expected = "k must be")]
    fn reset_zero_k_panics() {
        TopK::new(3).reset(0);
    }

    #[test]
    fn nan_score_is_dropped_not_panicking() {
        // Regression: Hit::cmp used to `expect("NaN score")`, so one NaN
        // similarity panicked the serving path mid-request.
        let mut t = TopK::new(2);
        t.push(1, f64::NAN);
        assert!(t.is_empty(), "NaN-only pushes keep the collector empty");
        t.push(2, 0.8);
        t.push(3, f64::NAN);
        t.push(4, 0.5);
        t.push(5, 0.9); // evicts 0.5 — heap comparison with a full heap
        assert_eq!(t.doc_ids(), vec![5, 2]);
        // Direct comparator use: NaN orders as minus infinity.
        let nan = Hit {
            doc: 1,
            score: f64::NAN,
        };
        let low = Hit {
            doc: 2,
            score: f64::NEG_INFINITY,
        };
        assert_eq!(nan.cmp(&low), Ordering::Greater, "tie at -inf, doc 1 < 2");
        assert_eq!(
            nan.cmp(&Hit { doc: 0, score: 0.0 }),
            Ordering::Less,
            "NaN sinks below any real score"
        );
    }
}

//! Query-result cache.
//!
//! §3.2: "At the online request processing stage, if a query request does
//! not hit the query cache, the search engine scans its index file…" — so
//! the paper's engine fronts the index with a result cache. This is a
//! bounded LRU keyed by the (sorted) query terms; entries are invalidated
//! wholesale when the page set changes.

use std::collections::HashMap;

use crate::topk::TopK;

/// A bounded LRU cache from query terms to top-k results.
#[derive(Debug)]
pub struct QueryCache {
    capacity: usize,
    /// terms -> (result, last-use stamp).
    map: HashMap<Vec<u32>, (TopK, u64)>,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl QueryCache {
    /// Cache holding at most `capacity` distinct queries.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "QueryCache: capacity must be >= 1");
        QueryCache {
            capacity,
            map: HashMap::with_capacity(capacity + 1),
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Number of cached queries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Look up `terms` (must be sorted — [`crate::SearchRequest`] sorts).
    /// Refreshes recency on hit.
    pub fn get(&mut self, terms: &[u32]) -> Option<TopK> {
        self.clock += 1;
        match self.map.get_mut(terms) {
            Some((result, stamp)) => {
                *stamp = self.clock;
                self.hits += 1;
                Some(result.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Insert a result, evicting the least-recently-used entry when full.
    pub fn put(&mut self, terms: Vec<u32>, result: TopK) {
        self.clock += 1;
        self.map.insert(terms, (result, self.clock));
        if self.map.len() > self.capacity {
            let oldest = self
                .map
                .iter()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(k, _)| k.clone())
                .expect("cache over capacity implies non-empty");
            self.map.remove(&oldest);
        }
    }

    /// Drop everything (call after the page set changes).
    pub fn invalidate(&mut self) {
        self.map.clear();
    }

    /// `(hits, misses)` since construction.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Hit rate in `[0, 1]`; 0 before any lookup.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topk(doc: u64) -> TopK {
        let mut t = TopK::new(10);
        t.push(doc, 1.0);
        t
    }

    #[test]
    fn get_after_put_hits() {
        let mut c = QueryCache::new(4);
        assert!(c.get(&[1, 2]).is_none());
        c.put(vec![1, 2], topk(7));
        let hit = c.get(&[1, 2]).expect("hit");
        assert_eq!(hit.doc_ids(), vec![7]);
        assert_eq!(c.stats(), (1, 1));
        assert_eq!(c.hit_rate(), 0.5);
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = QueryCache::new(2);
        c.put(vec![1], topk(1));
        c.put(vec![2], topk(2));
        // Touch [1] so [2] becomes the LRU.
        assert!(c.get(&[1]).is_some());
        c.put(vec![3], topk(3));
        assert_eq!(c.len(), 2);
        assert!(c.get(&[2]).is_none(), "LRU entry must be evicted");
        assert!(c.get(&[1]).is_some());
        assert!(c.get(&[3]).is_some());
    }

    #[test]
    fn put_existing_updates_value() {
        let mut c = QueryCache::new(2);
        c.put(vec![1], topk(1));
        c.put(vec![1], topk(9));
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(&[1]).unwrap().doc_ids(), vec![9]);
    }

    #[test]
    fn invalidate_clears() {
        let mut c = QueryCache::new(4);
        c.put(vec![1], topk(1));
        c.invalidate();
        assert!(c.is_empty());
        assert!(c.get(&[1]).is_none());
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        QueryCache::new(0);
    }
}

//! The per-component search engine: exact query evaluation over the
//! inverted index (the paper's Lucene stand-in).

use crate::index::InvertedIndex;
use crate::topk::TopK;

/// Evaluate `terms` (sorted ascending) over the index, returning the best
/// `k` pages. Documents are scored by summed sublinear tf-idf with length
/// normalization — the similarity score the paper ranks by.
pub fn search_exact(index: &InvertedIndex, terms: &[u32], k: usize) -> TopK {
    debug_assert!(
        terms.windows(2).all(|w| w[0] < w[1]),
        "terms must be sorted"
    );
    // Accumulate scores doc-at-a-time over the union of posting lists.
    let mut scores: std::collections::HashMap<u64, f64> = std::collections::HashMap::new();
    for &t in terms {
        for &(doc, tf) in index.postings(t) {
            *scores.entry(doc).or_insert(0.0) += index.tf_idf(tf, t);
        }
    }
    let mut top = TopK::new(k);
    for (doc, raw) in scores {
        top.push(doc, raw / index.doc_norm(doc));
    }
    top
}

#[cfg(test)]
mod tests {
    use super::*;
    use at_synopsis::{RowStore, SparseRow};

    fn corpus() -> (RowStore, InvertedIndex) {
        let mut s = RowStore::new(10);
        // doc 0 is all about term 3; doc 1 mentions it once among much else;
        // doc 2 is irrelevant.
        s.push_row(SparseRow::from_pairs(vec![(3, 6.0)]));
        s.push_row(SparseRow::from_pairs(vec![
            (1, 3.0),
            (3, 1.0),
            (7, 4.0),
            (9, 4.0),
        ]));
        s.push_row(SparseRow::from_pairs(vec![(5, 2.0)]));
        let idx = InvertedIndex::build(&s);
        (s, idx)
    }

    #[test]
    fn relevant_doc_ranks_first() {
        let (_, idx) = corpus();
        let top = search_exact(&idx, &[3], 10);
        let ids = top.doc_ids();
        assert_eq!(ids[0], 0, "focused doc must outrank diluted doc");
        assert_eq!(ids.len(), 2, "irrelevant doc must not appear");
    }

    #[test]
    fn multi_term_union() {
        let (_, idx) = corpus();
        let top = search_exact(&idx, &[3, 5], 10);
        assert_eq!(top.len(), 3, "union of postings covers all matching docs");
    }

    #[test]
    fn k_limits_results() {
        let (_, idx) = corpus();
        let top = search_exact(&idx, &[3, 5], 1);
        assert_eq!(top.len(), 1);
    }

    #[test]
    fn no_match_is_empty() {
        let (_, idx) = corpus();
        assert!(search_exact(&idx, &[8], 10).is_empty());
    }

    #[test]
    fn scores_match_score_row() {
        // The index path and the generic row-scoring path agree.
        let (s, idx) = corpus();
        let terms = vec![3u32, 7];
        let top = search_exact(&idx, &terms, 10);
        for h in top.sorted() {
            let row = s.row(h.doc);
            let via_row = idx.score_row(row.iter(), &terms);
            assert!(
                (h.score - via_row).abs() < 1e-12,
                "doc {}: {} vs {via_row}",
                h.doc,
                h.score
            );
        }
    }
}

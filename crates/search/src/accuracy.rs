//! Search accuracy: top-k overlap and accuracy-loss percentage.
//!
//! §4.1: "the accuracy is measured by the proportion of the actual top 10
//! web pages (the 10 pages with the highest similarity scores when
//! searching all web pages) in the retrieved top 10 pages."

/// Proportion of `actual` present in `retrieved`, in `[0, 1]`. An empty
/// `actual` (no page matches the query at all) counts as full accuracy.
pub fn topk_overlap(actual: &[u64], retrieved: &[u64]) -> f64 {
    if actual.is_empty() {
        return 1.0;
    }
    let set: std::collections::HashSet<u64> = retrieved.iter().copied().collect();
    let hits = actual.iter().filter(|d| set.contains(d)).count();
    hits as f64 / actual.len() as f64
}

/// Accuracy-loss percentage versus exact processing. Exact retrieval has
/// overlap 1 by definition, so the loss is simply `100 × (1 − overlap)`.
pub fn accuracy_loss_pct(overlap: f64) -> f64 {
    assert!(
        (0.0..=1.0 + 1e-9).contains(&overlap),
        "overlap out of range"
    );
    ((1.0 - overlap) * 100.0).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_overlap() {
        assert_eq!(topk_overlap(&[1, 2, 3], &[3, 2, 1]), 1.0);
        assert_eq!(accuracy_loss_pct(1.0), 0.0);
    }

    #[test]
    fn partial_overlap() {
        let o = topk_overlap(&[1, 2, 3, 4], &[1, 2, 9, 9]);
        assert_eq!(o, 0.5);
        assert_eq!(accuracy_loss_pct(o), 50.0);
    }

    #[test]
    fn disjoint_is_zero() {
        assert_eq!(topk_overlap(&[1], &[2]), 0.0);
        assert_eq!(accuracy_loss_pct(0.0), 100.0);
    }

    #[test]
    fn empty_actual_is_full_accuracy() {
        assert_eq!(topk_overlap(&[], &[1, 2]), 1.0);
    }

    #[test]
    fn retrieved_superset_counts() {
        assert_eq!(topk_overlap(&[5], &[1, 2, 5, 9]), 1.0);
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn bad_overlap_panics() {
        accuracy_loss_pct(1.5);
    }
}

//! # at-search
//!
//! The inverted-index web search engine of the AccuracyTrader reproduction
//! (Han et al., ICPP 2016, §3.2 — the Lucene stand-in), with its
//! AccuracyTrader adapter:
//!
//! * [`mod@tokenize`] — tokenizer + interning vocabulary for text input.
//! * [`index`] — the inverted index (postings, idf, norms).
//! * [`engine`] — exact top-k query evaluation.
//! * [`topk`] — bounded best-k collection with merge (fan-out composition).
//! * [`accuracy`] — top-k overlap and accuracy-loss percentage.
//! * [`adapter`] — [`SearchService`]: the [`at_core::ApproximateService`]
//!   implementation plus the Figure-4(b) section-coverage analysis.

pub mod accuracy;
pub mod adapter;
pub mod cache;
pub mod engine;
pub mod index;
pub mod score;
pub mod tokenize;
pub mod topk;

pub use accuracy::{accuracy_loss_pct, topk_overlap};
pub use adapter::{section_top_k_coverage, SearchRequest, SearchService, COMPONENT_STRIDE};
pub use cache::QueryCache;
pub use engine::search_exact;
pub use index::InvertedIndex;
pub use score::{Bm25, Bm25Params};
pub use tokenize::{tokenize, Vocabulary};
pub use topk::{Hit, TopK};

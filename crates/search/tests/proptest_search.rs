//! Property-based tests for the search substrate: top-k vs. a sort oracle,
//! exact search vs. brute-force scoring, and cache/LRU behaviour.

use at_search::{search_exact, InvertedIndex, QueryCache, TopK};
use at_synopsis::{RowStore, SparseRow};
use proptest::prelude::*;

fn docs_strategy() -> impl Strategy<Value = Vec<Vec<(u8, u8)>>> {
    prop::collection::vec(prop::collection::vec((0u8..24, 1u8..=6), 1..10), 1..40)
}

fn build_store(docs: &[Vec<(u8, u8)>]) -> RowStore {
    let mut s = RowStore::new(24);
    for d in docs {
        s.push_row(SparseRow::from_pairs(
            d.iter().map(|&(t, c)| (t as u32, c as f64)).collect(),
        ));
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn topk_matches_sort_oracle(hits in prop::collection::vec((0u64..1000, 0.0f64..100.0), 0..200),
                                k in 1usize..20) {
        let mut dedup: std::collections::HashMap<u64, f64> = Default::default();
        for (d, s) in hits {
            dedup.insert(d, s);
        }
        let mut top = TopK::new(k);
        for (&d, &s) in &dedup {
            top.push(d, s);
        }
        let got = top.doc_ids();
        let mut oracle: Vec<(u64, f64)> = dedup.into_iter().collect();
        oracle.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        oracle.truncate(k);
        let want: Vec<u64> = oracle.into_iter().map(|(d, _)| d).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn search_matches_bruteforce_scoring(docs in docs_strategy(),
                                         terms in prop::collection::vec(0u8..24, 1..4)) {
        let store = build_store(&docs);
        let index = InvertedIndex::build(&store);
        let mut q: Vec<u32> = terms.iter().map(|&t| t as u32).collect();
        q.sort_unstable();
        q.dedup();

        let got = search_exact(&index, &q, 10);
        // Oracle: score every doc through the generic row scorer.
        let mut oracle = TopK::new(10);
        for id in store.ids() {
            let s = index.score_row(store.row(id).iter(), &q);
            if s > 0.0 {
                oracle.push(id, s);
            }
        }
        prop_assert_eq!(got.doc_ids(), oracle.doc_ids());
    }

    #[test]
    fn merge_of_shards_equals_global_search(docs in docs_strategy(),
                                            terms in prop::collection::vec(0u8..24, 1..4),
                                            n_shards in 1usize..4) {
        // Searching shard-by-shard and merging must equal searching one
        // global index, up to score ties (compare score multisets).
        let store = build_store(&docs);
        let global_index = InvertedIndex::build(&store);
        let mut q: Vec<u32> = terms.iter().map(|&t| t as u32).collect();
        q.sort_unstable();
        q.dedup();

        // NOTE: idf differs per shard, so this property is only exact when
        // scoring every shard with the *global* statistics — which is what
        // we do here via score_row on the global index.
        let mut merged = TopK::new(10);
        for shard in 0..n_shards {
            for id in store.ids().filter(|id| (*id as usize) % n_shards == shard) {
                let s = global_index.score_row(store.row(id).iter(), &q);
                if s > 0.0 {
                    merged.push(id, s);
                }
            }
        }
        let global = search_exact(&global_index, &q, 10);
        let mut a: Vec<u64> = merged.doc_ids();
        let mut b: Vec<u64> = global.doc_ids();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn cache_never_changes_results(queries in prop::collection::vec(prop::collection::vec(0u8..24, 1..4), 1..30),
                                   docs in docs_strategy()) {
        let store = build_store(&docs);
        let index = InvertedIndex::build(&store);
        let mut cache = QueryCache::new(8);
        for terms in &queries {
            let mut q: Vec<u32> = terms.iter().map(|&t| t as u32).collect();
            q.sort_unstable();
            q.dedup();
            let fresh = search_exact(&index, &q, 10);
            let cached = match cache.get(&q) {
                Some(hit) => hit,
                None => {
                    cache.put(q.clone(), fresh.clone());
                    fresh.clone()
                }
            };
            prop_assert_eq!(cached.doc_ids(), fresh.doc_ids());
        }
        let (hits, misses) = cache.stats();
        prop_assert_eq!(hits + misses, queries.len() as u64);
    }
}

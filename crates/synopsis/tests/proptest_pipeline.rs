//! Property-based tests: the synopsis store's consistency invariants must
//! survive arbitrary sequences of additions and changes, and aggregation
//! must be exact at all times.

use at_linalg::svd::SvdConfig;
use at_synopsis::{
    AggregationMode, DataUpdate, RowStore, SparseRow, SynopsisConfig, SynopsisStore,
};
use proptest::prelude::*;

fn base_dataset(n: usize) -> RowStore {
    let mut s = RowStore::new(16);
    for r in 0..n as u32 {
        let base = if r % 2 == 0 { 1.0 } else { 4.0 };
        s.push_row(SparseRow::from_pairs(
            (0..16)
                .filter(|c| (r + c) % 5 != 0)
                .map(|c| (c, base + ((r + c) % 3) as f64 * 0.3))
                .collect(),
        ));
    }
    s
}

fn quick_config() -> SynopsisConfig {
    SynopsisConfig {
        svd: SvdConfig::default().with_epochs(8),
        size_ratio: 12,
        ..SynopsisConfig::default()
    }
}

/// A randomly generated update against a dataset of (at least) `n` rows.
#[derive(Clone, Debug)]
enum Op {
    Add(Vec<(u8, u8)>),
    Change(u16, Vec<(u8, u8)>),
}

fn row_strategy() -> impl Strategy<Value = Vec<(u8, u8)>> {
    prop::collection::vec((0u8..16, 1u8..=5), 1..12)
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        row_strategy().prop_map(Op::Add),
        (0u16..150, row_strategy()).prop_map(|(id, row)| Op::Change(id, row)),
    ]
}

fn to_row(pairs: &[(u8, u8)]) -> SparseRow {
    SparseRow::from_pairs(pairs.iter().map(|&(c, v)| (c as u32, v as f64)).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn store_stays_consistent_under_random_updates(ops in prop::collection::vec(op_strategy(), 1..25)) {
        let mut data = base_dataset(150);
        let (mut store, _) = SynopsisStore::build(&data, AggregationMode::Mean, quick_config());
        let updates: Vec<DataUpdate> = ops
            .iter()
            .map(|op| match op {
                Op::Add(pairs) => DataUpdate::Add(to_row(pairs)),
                Op::Change(id, pairs) => DataUpdate::Change {
                    id: *id as u64 % 150,
                    row: to_row(pairs),
                },
            })
            .collect();
        store.apply_updates(&mut data, updates);
        store.validate().map_err(TestCaseError::fail)?;

        // Membership partitions the updated id space exactly.
        let mut all: Vec<u64> = store
            .index()
            .iter()
            .flat_map(|(_, m)| m.iter().copied())
            .collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..data.len() as u64).collect::<Vec<_>>());

        // Aggregated info is exact for every group.
        for p in store.synopsis().iter() {
            let members = store.index().members(p.node).expect("indexed");
            prop_assert_eq!(&p.info, &data.aggregate(members, AggregationMode::Mean));
        }
    }

    #[test]
    fn batched_and_oneshot_updates_agree_on_membership(ops in prop::collection::vec(op_strategy(), 2..16)) {
        // Applying updates in one batch or one-at-a-time must end with the
        // same dataset and a valid store either way.
        let updates: Vec<DataUpdate> = ops
            .iter()
            .map(|op| match op {
                Op::Add(pairs) => DataUpdate::Add(to_row(pairs)),
                Op::Change(id, pairs) => DataUpdate::Change {
                    id: *id as u64 % 100,
                    row: to_row(pairs),
                },
            })
            .collect();

        let mut data_a = base_dataset(100);
        let (mut store_a, _) = SynopsisStore::build(&data_a, AggregationMode::Mean, quick_config());
        store_a.apply_updates(&mut data_a, updates.clone());
        store_a.validate().map_err(TestCaseError::fail)?;

        let mut data_b = base_dataset(100);
        let (mut store_b, _) = SynopsisStore::build(&data_b, AggregationMode::Mean, quick_config());
        for u in updates {
            store_b.apply_updates(&mut data_b, vec![u]);
        }
        store_b.validate().map_err(TestCaseError::fail)?;

        prop_assert_eq!(data_a.len(), data_b.len());
        for id in 0..data_a.len() as u64 {
            prop_assert_eq!(data_a.row(id), data_b.row(id), "row {} diverged", id);
        }
    }

    #[test]
    fn blocked_rowstore_round_trips_csr_view(ops in prop::collection::vec(op_strategy(), 1..25)) {
        // The bucketed (blocked) row cache must stay a bit-exact mirror of
        // the CSR view through arbitrary push/replace sequences.
        let mut data = base_dataset(40);
        for op in &ops {
            match op {
                Op::Add(pairs) => {
                    data.push_row(to_row(pairs));
                }
                Op::Change(id, pairs) => {
                    data.replace_row(*id as u64 % 40, to_row(pairs));
                }
            }
        }
        let csr = data.to_csr();
        for id in 0..data.len() {
            let (cols, vals) = data.row_blocked(id as u64).to_sorted();
            prop_assert_eq!(cols.as_slice(), csr.row_cols(id), "row {} cols", id);
            let want = csr.row_values(id);
            prop_assert_eq!(vals.len(), want.len());
            for (got, want) in vals.iter().zip(want) {
                prop_assert_eq!(got.to_bits(), want.to_bits());
            }
        }
    }
}

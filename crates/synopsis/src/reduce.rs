//! Step 1 of synopsis creation: dimensionality reduction.
//!
//! Wraps the incremental SVD of `at-linalg` behind a [`Reducer`] that owns
//! the fitted latent space, so that synopsis *updating* can project new or
//! changed points into the same space via fold-in (without re-fitting).

use crate::dataset::{RowStore, SparseRow};
use at_linalg::svd::{IncrementalSvd, SvdConfig, SvdModel};

/// A fitted dimensionality reducer (the paper's incremental SVD, step 1).
#[derive(Clone, Debug)]
pub struct Reducer {
    model: SvdModel,
    /// Fold-in epochs for projecting new rows (cheap; independent of the
    /// dataset size, which is the property the paper cites).
    fold_in_epochs: usize,
}

impl Reducer {
    /// Fit the reducer over every row of `dataset`.
    pub fn fit(dataset: &RowStore, config: SvdConfig) -> Self {
        let csr = dataset.to_csr();
        let model = IncrementalSvd::new(config).fit(&csr);
        Reducer {
            model,
            fold_in_epochs: config.epochs_per_dim,
        }
    }

    /// Dimensionality of the reduced space.
    pub fn dims(&self) -> usize {
        self.model.row_factors().cols()
    }

    /// Reduced vector of training row `id`.
    pub fn reduced(&self, id: u64) -> &[f64] {
        self.model.row_vector(id as usize)
    }

    /// Number of rows the reducer was fitted on.
    pub fn fitted_rows(&self) -> usize {
        self.model.row_factors().rows()
    }

    /// Project a new/changed row into the latent space (fold-in).
    pub fn project(&self, row: &SparseRow) -> Vec<f64> {
        self.model
            .fold_in_row(&row.cols, &row.vals, self.fold_in_epochs)
    }

    /// Borrow the underlying SVD model.
    pub fn model(&self) -> &SvdModel {
        &self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::SparseRow;

    fn dataset() -> RowStore {
        let mut s = RowStore::new(8);
        for r in 0..24u32 {
            let base = if r < 12 { 1.0 } else { 4.0 };
            let pairs: Vec<(u32, f64)> = (0..8)
                .map(|c| (c, base + ((r + c) % 3) as f64 * 0.1))
                .collect();
            s.push_row(SparseRow::from_pairs(pairs));
        }
        s
    }

    #[test]
    fn fit_shapes() {
        let d = dataset();
        let r = Reducer::fit(&d, SvdConfig::default().with_dims(3).with_epochs(30));
        assert_eq!(r.dims(), 3);
        assert_eq!(r.fitted_rows(), 24);
        assert_eq!(r.reduced(0).len(), 3);
    }

    #[test]
    fn projection_of_training_row_predicts_like_training_vector() {
        let d = dataset();
        let r = Reducer::fit(&d, SvdConfig::default().with_dims(2).with_epochs(150));
        let row = d.row(3).clone();
        let proj = r.project(&row);
        // Compare prediction error of the projection vs. the fitted vector.
        let m = r.model();
        let mut err_proj = 0.0;
        let mut err_fit = 0.0;
        for (c, v) in row.iter() {
            let pp =
                m.global_mean() + at_linalg::vector::dot(&proj, m.col_factors().row(c as usize));
            let pf = m.predict(3, c as usize);
            err_proj += (pp - v) * (pp - v);
            err_fit += (pf - v) * (pf - v);
        }
        assert!(
            err_proj <= err_fit * 4.0 + 0.05,
            "fold-in far worse than fit: proj={err_proj} fit={err_fit}"
        );
    }
}

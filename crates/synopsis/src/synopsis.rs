//! The synopsis itself: the set of aggregated data points.

use crate::dataset::{AggregationMode, SparseRow};
use at_linalg::{BlockedRow, RowStats};
use at_rtree::NodeId;

/// One aggregated data point: the folded information of a group of similar
/// original data points (one R-tree node at the synopsis depth).
#[derive(Clone, Debug)]
pub struct AggregatedPoint {
    /// The R-tree node this point was cut from (the index-file key).
    pub node: NodeId,
    /// Aggregated information (mean or merged sparse row).
    pub info: SparseRow,
    /// How many original points it aggregates.
    pub member_count: usize,
}

/// A component's synopsis: aggregated data points keyed by R-tree node.
///
/// Paper §2.1: "The synopsis consists of multiple aggregated data points,
/// each aggregates the information of multiple similar data points in the
/// subset." It is deliberately small (≈100× smaller than the subset) so a
/// component can always process it quickly.
///
/// Each point's [`RowStats`] (sum/mean/nnz of its aggregated row) is cached
/// at [`upsert`](Synopsis::upsert) time — the per-request path reads the
/// aggregated neighbour's mean in `O(1)` instead of rescanning its values,
/// and incremental synopsis updates refresh the cache automatically because
/// they go through `upsert`/`remove`.
///
/// Storage is a `Vec` kept sorted by node id: the per-request path iterates
/// every point once per component, so [`iter`](Synopsis::iter) /
/// [`iter_with_stats`](Synopsis::iter_with_stats) must be allocation- and
/// sort-free. Mutation (binary search + shift on upsert/remove) pays the
/// `O(m)` cost instead, on the offline/update path where it belongs.
#[derive(Clone, Debug)]
pub struct Synopsis {
    mode: AggregationMode,
    /// `(point, stats)` entries sorted ascending by `point.node`.
    points: Vec<(AggregatedPoint, RowStats)>,
    /// Blocked rendering of each point's row, index-parallel to `points`
    /// and maintained by the same `upsert`/`remove` mutations — the batch
    /// pass reads dense lanes without touching the CSR view.
    blocked: Vec<BlockedRow>,
}

impl Synopsis {
    /// Empty synopsis with the given aggregation mode.
    pub fn new(mode: AggregationMode) -> Self {
        Synopsis {
            mode,
            points: Vec::new(),
            blocked: Vec::new(),
        }
    }

    fn position(&self, node: NodeId) -> Result<usize, usize> {
        self.points.binary_search_by_key(&node, |(p, _)| p.node)
    }

    /// Aggregation mode (mean for numeric data, merge for text).
    pub fn mode(&self) -> AggregationMode {
        self.mode
    }

    /// Number of aggregated data points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when the synopsis holds no aggregated points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Total stored entries across all aggregated rows (a size proxy for
    /// the "sufficiently small" requirement).
    pub fn total_entries(&self) -> usize {
        self.points.iter().map(|(p, _)| p.info.nnz()).sum()
    }

    /// The aggregated point cut from `node`, if present.
    pub fn point(&self, node: NodeId) -> Option<&AggregatedPoint> {
        self.position(node).ok().map(|i| &self.points[i].0)
    }

    /// The aggregated point of `node` together with its cached row stats.
    pub fn point_with_stats(&self, node: NodeId) -> Option<(&AggregatedPoint, RowStats)> {
        self.position(node).ok().map(|i| {
            let (p, s) = &self.points[i];
            (p, *s)
        })
    }

    /// Insert or replace the aggregated point for `node`, refreshing its
    /// cached row stats and blocked rendering.
    pub fn upsert(&mut self, point: AggregatedPoint) {
        let stats = RowStats::of(&point.info.vals);
        let blocked = BlockedRow::from_sorted(&point.info.cols, &point.info.vals);
        match self.position(point.node) {
            Ok(i) => {
                self.points[i] = (point, stats);
                self.blocked[i] = blocked;
            }
            Err(i) => {
                self.points.insert(i, (point, stats));
                self.blocked.insert(i, blocked);
            }
        }
    }

    /// Remove the point of a node that no longer exists at the synopsis
    /// depth; returns whether it was present.
    pub fn remove(&mut self, node: NodeId) -> bool {
        match self.position(node) {
            Ok(i) => {
                self.points.remove(i);
                self.blocked.remove(i);
                true
            }
            Err(_) => false,
        }
    }

    /// Iterate aggregated points in deterministic (node-id) order.
    /// Allocation-free: this runs once per request per component.
    pub fn iter(&self) -> impl Iterator<Item = &AggregatedPoint> {
        self.points.iter().map(|(p, _)| p)
    }

    /// Iterate aggregated points with their cached row stats, in
    /// deterministic (node-id) order. Allocation-free, like [`iter`](Self::iter).
    pub fn iter_with_stats(&self) -> impl Iterator<Item = (&AggregatedPoint, RowStats)> {
        self.points.iter().map(|(p, s)| (p, *s))
    }

    /// The batch-iteration hook: every aggregated point with its cached
    /// stats as one contiguous slice (node-id order).
    ///
    /// Batched serving makes **one** pass over this slice per component
    /// per batch, sharing each point (and its hot cache lines) across all
    /// requests of the batch; contiguous indexed access also lets callers
    /// chunk the pass (e.g. blocking points × requests) where the
    /// streaming iterators above can only run front to back once.
    pub fn points_with_stats(&self) -> &[(AggregatedPoint, RowStats)] {
        &self.points
    }

    /// Blocked rendering of every aggregated row, index-parallel to
    /// [`points_with_stats`](Self::points_with_stats) (same node-id order,
    /// same length). The batch pass zips the two slices so each point's
    /// dense lanes ride along with its stats.
    pub fn points_blocked(&self) -> &[BlockedRow] {
        &self.blocked
    }

    /// The aggregated point of `node` with its cached stats **and** blocked
    /// rendering — the stage-2 improvement path backs a point out of the
    /// running accumulators through the same blocked kernels it was folded
    /// in with.
    pub fn point_full(&self, node: NodeId) -> Option<(&AggregatedPoint, RowStats, &BlockedRow)> {
        self.position(node).ok().map(|i| {
            let (p, s) = &self.points[i];
            (p, *s, &self.blocked[i])
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(i: u32, count: usize) -> AggregatedPoint {
        AggregatedPoint {
            node: NodeId::from_index(i),
            info: SparseRow::from_pairs(vec![(0, i as f64)]),
            member_count: count,
        }
    }

    #[test]
    fn upsert_and_lookup() {
        let mut s = Synopsis::new(AggregationMode::Mean);
        s.upsert(pt(3, 10));
        assert_eq!(s.len(), 1);
        assert_eq!(s.point(NodeId::from_index(3)).unwrap().member_count, 10);
        s.upsert(pt(3, 20));
        assert_eq!(s.len(), 1, "upsert replaces");
        assert_eq!(s.point(NodeId::from_index(3)).unwrap().member_count, 20);
    }

    #[test]
    fn remove_reports_presence() {
        let mut s = Synopsis::new(AggregationMode::Merge);
        s.upsert(pt(1, 1));
        assert!(s.remove(NodeId::from_index(1)));
        assert!(!s.remove(NodeId::from_index(1)));
        assert!(s.is_empty());
    }

    #[test]
    fn iter_is_sorted_by_node() {
        let mut s = Synopsis::new(AggregationMode::Mean);
        for i in [5u32, 1, 9, 3] {
            s.upsert(pt(i, 1));
        }
        let order: Vec<u32> = s.iter().map(|p| p.node.index()).collect();
        assert_eq!(order, vec![1, 3, 5, 9]);
    }

    #[test]
    fn upsert_refreshes_cached_stats() {
        let mut s = Synopsis::new(AggregationMode::Mean);
        s.upsert(AggregatedPoint {
            node: NodeId::from_index(7),
            info: SparseRow::from_pairs(vec![(0, 2.0), (1, 4.0)]),
            member_count: 3,
        });
        let (_, stats) = s.point_with_stats(NodeId::from_index(7)).unwrap();
        assert_eq!((stats.nnz, stats.sum), (2, 6.0));
        assert_eq!(stats.mean(), 3.0);
        // Replacing the point must replace the cached stats with it.
        s.upsert(AggregatedPoint {
            node: NodeId::from_index(7),
            info: SparseRow::from_pairs(vec![(2, 9.0)]),
            member_count: 1,
        });
        let (_, stats) = s.point_with_stats(NodeId::from_index(7)).unwrap();
        assert_eq!((stats.nnz, stats.sum), (1, 9.0));
        let with_stats: Vec<_> = s.iter_with_stats().collect();
        assert_eq!(with_stats.len(), 1);
        assert_eq!(with_stats[0].1.mean(), 9.0);
    }

    #[test]
    fn points_with_stats_matches_streaming_iteration() {
        let mut s = Synopsis::new(AggregationMode::Mean);
        for i in [8u32, 2, 5] {
            s.upsert(pt(i, i as usize));
        }
        let slice = s.points_with_stats();
        assert_eq!(slice.len(), s.len());
        for ((p_it, st_it), (p_sl, st_sl)) in s.iter_with_stats().zip(slice) {
            assert_eq!(p_it.node, p_sl.node);
            assert_eq!(st_it.sum, st_sl.sum);
            assert_eq!(st_it.nnz, st_sl.nnz);
        }
    }

    #[test]
    fn blocked_slice_stays_parallel_through_mutations() {
        let mut s = Synopsis::new(AggregationMode::Mean);
        for i in [5u32, 1, 9, 3] {
            s.upsert(pt(i, 1));
        }
        assert!(s.remove(NodeId::from_index(3)));
        s.upsert(pt(7, 2));
        let points = s.points_with_stats();
        let blocked = s.points_blocked();
        assert_eq!(points.len(), blocked.len());
        for ((p, _), b) in points.iter().zip(blocked) {
            assert_eq!(b.to_sorted(), (p.info.cols.clone(), p.info.vals.clone()));
        }
        let (p, _, b) = s.point_full(NodeId::from_index(7)).unwrap();
        assert_eq!(p.member_count, 2);
        assert_eq!(b.to_sorted().0, p.info.cols);
    }

    #[test]
    fn total_entries_sums_rows() {
        let mut s = Synopsis::new(AggregationMode::Mean);
        s.upsert(AggregatedPoint {
            node: NodeId::from_index(0),
            info: SparseRow::from_pairs(vec![(0, 1.0), (3, 1.0)]),
            member_count: 2,
        });
        s.upsert(pt(1, 1));
        assert_eq!(s.total_entries(), 3);
    }
}

//! The synopsis itself: the set of aggregated data points.

use crate::dataset::{AggregationMode, SparseRow};
use at_rtree::NodeId;
use std::collections::HashMap;

/// One aggregated data point: the folded information of a group of similar
/// original data points (one R-tree node at the synopsis depth).
#[derive(Clone, Debug)]
pub struct AggregatedPoint {
    /// The R-tree node this point was cut from (the index-file key).
    pub node: NodeId,
    /// Aggregated information (mean or merged sparse row).
    pub info: SparseRow,
    /// How many original points it aggregates.
    pub member_count: usize,
}

/// A component's synopsis: aggregated data points keyed by R-tree node.
///
/// Paper §2.1: "The synopsis consists of multiple aggregated data points,
/// each aggregates the information of multiple similar data points in the
/// subset." It is deliberately small (≈100× smaller than the subset) so a
/// component can always process it quickly.
#[derive(Clone, Debug)]
pub struct Synopsis {
    mode: AggregationMode,
    points: HashMap<NodeId, AggregatedPoint>,
}

impl Synopsis {
    /// Empty synopsis with the given aggregation mode.
    pub fn new(mode: AggregationMode) -> Self {
        Synopsis {
            mode,
            points: HashMap::new(),
        }
    }

    /// Aggregation mode (mean for numeric data, merge for text).
    pub fn mode(&self) -> AggregationMode {
        self.mode
    }

    /// Number of aggregated data points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when the synopsis holds no aggregated points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Total stored entries across all aggregated rows (a size proxy for
    /// the "sufficiently small" requirement).
    pub fn total_entries(&self) -> usize {
        self.points.values().map(|p| p.info.nnz()).sum()
    }

    /// The aggregated point cut from `node`, if present.
    pub fn point(&self, node: NodeId) -> Option<&AggregatedPoint> {
        self.points.get(&node)
    }

    /// Insert or replace the aggregated point for `node`.
    pub fn upsert(&mut self, point: AggregatedPoint) {
        self.points.insert(point.node, point);
    }

    /// Remove the point of a node that no longer exists at the synopsis
    /// depth; returns whether it was present.
    pub fn remove(&mut self, node: NodeId) -> bool {
        self.points.remove(&node).is_some()
    }

    /// Iterate aggregated points in deterministic (node-id) order.
    pub fn iter(&self) -> impl Iterator<Item = &AggregatedPoint> {
        let mut ids: Vec<&AggregatedPoint> = self.points.values().collect();
        ids.sort_by_key(|p| p.node);
        ids.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(i: u32, count: usize) -> AggregatedPoint {
        AggregatedPoint {
            node: NodeId::from_index(i),
            info: SparseRow::from_pairs(vec![(0, i as f64)]),
            member_count: count,
        }
    }

    #[test]
    fn upsert_and_lookup() {
        let mut s = Synopsis::new(AggregationMode::Mean);
        s.upsert(pt(3, 10));
        assert_eq!(s.len(), 1);
        assert_eq!(s.point(NodeId::from_index(3)).unwrap().member_count, 10);
        s.upsert(pt(3, 20));
        assert_eq!(s.len(), 1, "upsert replaces");
        assert_eq!(s.point(NodeId::from_index(3)).unwrap().member_count, 20);
    }

    #[test]
    fn remove_reports_presence() {
        let mut s = Synopsis::new(AggregationMode::Merge);
        s.upsert(pt(1, 1));
        assert!(s.remove(NodeId::from_index(1)));
        assert!(!s.remove(NodeId::from_index(1)));
        assert!(s.is_empty());
    }

    #[test]
    fn iter_is_sorted_by_node() {
        let mut s = Synopsis::new(AggregationMode::Mean);
        for i in [5u32, 1, 9, 3] {
            s.upsert(pt(i, 1));
        }
        let order: Vec<u32> = s.iter().map(|p| p.node.index()).collect();
        assert_eq!(order, vec![1, 3, 5, 9]);
    }

    #[test]
    fn total_entries_sums_rows() {
        let mut s = Synopsis::new(AggregationMode::Mean);
        s.upsert(AggregatedPoint {
            node: NodeId::from_index(0),
            info: SparseRow::from_pairs(vec![(0, 1.0), (3, 1.0)]),
            member_count: 2,
        });
        s.upsert(pt(1, 1));
        assert_eq!(s.total_entries(), 3);
    }
}

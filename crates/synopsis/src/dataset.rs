//! Datasets as the synopsis pipeline sees them.
//!
//! Both of the paper's services reduce to the same shape: a component's
//! subset of input data is a collection of **sparse feature rows** —
//! a user's item→rating vector in the recommender, a web page's term→count
//! vector in the search engine (the paper's step 1 explicitly converts text
//! to such numeric vectors). [`RowStore`] stores those rows mutably so that
//! synopsis *updating* can add and change points in place.

use at_linalg::sparse::{SparseMatrix, SparseMatrixBuilder};
use at_linalg::{BlockedRow, RowStats};

/// How a group of original rows is folded into one aggregated data point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AggregationMode {
    /// Numeric datasets: per-column mean over the rows that have the column
    /// (paper: an aggregated user's rating on item *i* is the average rating
    /// of its members who rated *i*).
    Mean,
    /// Text datasets: merge — per-column sum (paper: an aggregated web page
    /// "contains all the contents" of its member pages).
    Merge,
}

/// A mutable collection of sparse feature rows, keyed by dense point ids
/// `0..len` (u64 for R-tree compatibility).
///
/// Each row's [`RowStats`] (sum/mean/nnz) is cached alongside it and kept
/// current by [`push_row`](RowStore::push_row) /
/// [`replace_row`](RowStore::replace_row), so the per-request serving path
/// reads a neighbour's mean in `O(1)` instead of rescanning its values.
/// A [`BlockedRow`] rendering of every row is cached the same way (built at
/// push/replace time, never on the serving path) so the block-aligned
/// correlation kernels read dense lanes instead of re-walking the CSR view.
#[derive(Clone, Debug, Default)]
pub struct RowStore {
    feature_dim: usize,
    rows: Vec<SparseRow>,
    stats: Vec<RowStats>,
    blocked: Vec<BlockedRow>,
}

/// One sparse row: parallel `(cols, vals)` with `cols` sorted ascending.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SparseRow {
    pub cols: Vec<u32>,
    pub vals: Vec<f64>,
}

impl SparseRow {
    /// Build from unsorted pairs; sorts and keeps the last duplicate.
    pub fn from_pairs(mut pairs: Vec<(u32, f64)>) -> Self {
        pairs.sort_by_key(|&(c, _)| c);
        let mut cols = Vec::with_capacity(pairs.len());
        let mut vals = Vec::with_capacity(pairs.len());
        for (c, v) in pairs {
            if cols.last() == Some(&c) {
                *vals.last_mut().expect("parallel vecs") = v;
            } else {
                cols.push(c);
                vals.push(v);
            }
        }
        SparseRow { cols, vals }
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.cols.len()
    }

    /// Value at column `c`, if stored.
    pub fn get(&self, c: u32) -> Option<f64> {
        self.cols.binary_search(&c).ok().map(|i| self.vals[i])
    }

    /// Iterate `(col, val)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u32, f64)> + '_ {
        self.cols.iter().copied().zip(self.vals.iter().copied())
    }
}

impl RowStore {
    /// Empty store whose rows index columns `0..feature_dim`.
    pub fn new(feature_dim: usize) -> Self {
        RowStore {
            feature_dim,
            rows: Vec::new(),
            stats: Vec::new(),
            blocked: Vec::new(),
        }
    }

    /// Number of rows (data points).
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows are stored.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Feature-space dimensionality (number of columns).
    pub fn feature_dim(&self) -> usize {
        self.feature_dim
    }

    /// Append a row, returning its id.
    ///
    /// # Panics
    /// Panics if any column is out of range.
    pub fn push_row(&mut self, row: SparseRow) -> u64 {
        for &c in &row.cols {
            assert!(
                (c as usize) < self.feature_dim,
                "push_row: column {c} >= feature_dim {}",
                self.feature_dim
            );
        }
        self.stats.push(RowStats::of(&row.vals));
        self.blocked
            .push(BlockedRow::from_sorted(&row.cols, &row.vals));
        self.rows.push(row);
        (self.rows.len() - 1) as u64
    }

    /// Replace row `id` in place (a data point whose "feature attributes or
    /// contents change", paper §2.2).
    ///
    /// # Panics
    /// Panics if `id` is out of range or a column is out of range.
    pub fn replace_row(&mut self, id: u64, row: SparseRow) {
        for &c in &row.cols {
            assert!(
                (c as usize) < self.feature_dim,
                "replace_row: column {c} >= feature_dim {}",
                self.feature_dim
            );
        }
        let slot = self
            .rows
            .get_mut(id as usize)
            .unwrap_or_else(|| panic!("replace_row: id {id} out of range"));
        self.stats[id as usize] = RowStats::of(&row.vals);
        self.blocked[id as usize] = BlockedRow::from_sorted(&row.cols, &row.vals);
        *slot = row;
    }

    /// Borrow row `id`.
    ///
    /// # Panics
    /// Panics if out of range.
    pub fn row(&self, id: u64) -> &SparseRow {
        &self.rows[id as usize]
    }

    /// Cached stats (sum/mean/nnz) of row `id`, maintained by
    /// [`push_row`](Self::push_row) / [`replace_row`](Self::replace_row).
    ///
    /// # Panics
    /// Panics if out of range.
    pub fn row_stats(&self, id: u64) -> RowStats {
        self.stats[id as usize]
    }

    /// Cached blocked rendering of row `id`, maintained like
    /// [`row_stats`](Self::row_stats): the serving path reads it without
    /// rebuilding anything.
    ///
    /// # Panics
    /// Panics if out of range.
    pub fn row_blocked(&self, id: u64) -> &BlockedRow {
        &self.blocked[id as usize]
    }

    /// All row ids (`0..len`).
    pub fn ids(&self) -> impl Iterator<Item = u64> + '_ {
        0..self.rows.len() as u64
    }

    /// Convert to CSR for SVD training.
    pub fn to_csr(&self) -> SparseMatrix {
        let mut b = SparseMatrixBuilder::new(self.rows.len(), self.feature_dim);
        for (r, row) in self.rows.iter().enumerate() {
            for (c, v) in row.iter() {
                b.push(r, c, v);
            }
        }
        b.build()
    }

    /// Aggregate `members`' rows into one row under `mode`. Column order of
    /// the result is sorted ascending; empty member list gives an empty row.
    pub fn aggregate(&self, members: &[u64], mode: AggregationMode) -> SparseRow {
        // Merge member rows column-wise: (sum, count) per column.
        let mut acc: std::collections::BTreeMap<u32, (f64, u32)> =
            std::collections::BTreeMap::new();
        for &id in members {
            for (c, v) in self.rows[id as usize].iter() {
                let e = acc.entry(c).or_insert((0.0, 0));
                e.0 += v;
                e.1 += 1;
            }
        }
        let mut cols = Vec::with_capacity(acc.len());
        let mut vals = Vec::with_capacity(acc.len());
        for (c, (sum, count)) in acc {
            cols.push(c);
            vals.push(match mode {
                AggregationMode::Mean => sum / count as f64,
                AggregationMode::Merge => sum,
            });
        }
        SparseRow { cols, vals }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> RowStore {
        let mut s = RowStore::new(5);
        s.push_row(SparseRow::from_pairs(vec![(0, 4.0), (2, 2.0)]));
        s.push_row(SparseRow::from_pairs(vec![(0, 2.0), (1, 3.0)]));
        s.push_row(SparseRow::from_pairs(vec![(2, 4.0), (4, 1.0)]));
        s
    }

    #[test]
    fn push_assigns_sequential_ids() {
        let mut s = RowStore::new(3);
        assert_eq!(s.push_row(SparseRow::default()), 0);
        assert_eq!(s.push_row(SparseRow::default()), 1);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn from_pairs_sorts_and_dedups() {
        let r = SparseRow::from_pairs(vec![(3, 1.0), (1, 2.0), (3, 9.0)]);
        assert_eq!(r.cols, vec![1, 3]);
        assert_eq!(r.vals, vec![2.0, 9.0]);
        assert_eq!(r.get(3), Some(9.0));
        assert_eq!(r.get(0), None);
    }

    #[test]
    fn row_stats_cache_tracks_mutations() {
        let mut s = store();
        let st = s.row_stats(0);
        assert_eq!(st.nnz, 2);
        assert_eq!(st.sum, 6.0);
        assert_eq!(st.mean(), 3.0);
        s.replace_row(0, SparseRow::from_pairs(vec![(1, 9.0)]));
        let st = s.row_stats(0);
        assert_eq!((st.nnz, st.sum), (1, 9.0));
        let id = s.push_row(SparseRow::from_pairs(vec![(0, 1.0), (3, 2.0), (4, 3.0)]));
        assert_eq!(s.row_stats(id).mean(), 2.0);
    }

    #[test]
    fn blocked_cache_tracks_mutations() {
        let mut s = store();
        let (cols, vals) = s.row_blocked(0).to_sorted();
        assert_eq!((cols, vals), (vec![0, 2], vec![4.0, 2.0]));
        s.replace_row(0, SparseRow::from_pairs(vec![(1, 9.0), (4, 3.0)]));
        let (cols, vals) = s.row_blocked(0).to_sorted();
        assert_eq!((cols, vals), (vec![1, 4], vec![9.0, 3.0]));
        let id = s.push_row(SparseRow::from_pairs(vec![(3, 7.0)]));
        assert_eq!(s.row_blocked(id).to_sorted(), (vec![3], vec![7.0]));
    }

    #[test]
    fn replace_row_updates_in_place() {
        let mut s = store();
        s.replace_row(1, SparseRow::from_pairs(vec![(4, 9.0)]));
        assert_eq!(s.row(1).get(4), Some(9.0));
        assert_eq!(s.row(1).nnz(), 1);
        assert_eq!(s.len(), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn replace_missing_row_panics() {
        let mut s = store();
        s.replace_row(99, SparseRow::default());
    }

    #[test]
    #[should_panic(expected = "feature_dim")]
    fn push_out_of_range_column_panics() {
        let mut s = RowStore::new(2);
        s.push_row(SparseRow::from_pairs(vec![(5, 1.0)]));
    }

    #[test]
    fn aggregate_mean_averages_present_values() {
        let s = store();
        // col 0: rows 0 and 1 -> mean(4, 2) = 3; col 2: rows 0 and 2 -> 3.
        let agg = s.aggregate(&[0, 1, 2], AggregationMode::Mean);
        assert_eq!(agg.get(0), Some(3.0));
        assert_eq!(agg.get(1), Some(3.0)); // only row 1
        assert_eq!(agg.get(2), Some(3.0));
        assert_eq!(agg.get(4), Some(1.0));
    }

    #[test]
    fn aggregate_merge_sums() {
        let s = store();
        let agg = s.aggregate(&[0, 2], AggregationMode::Merge);
        assert_eq!(agg.get(2), Some(6.0));
        assert_eq!(agg.get(0), Some(4.0));
        assert_eq!(agg.get(4), Some(1.0));
    }

    #[test]
    fn aggregate_empty_members() {
        let s = store();
        let agg = s.aggregate(&[], AggregationMode::Mean);
        assert_eq!(agg.nnz(), 0);
    }

    #[test]
    fn to_csr_roundtrip() {
        let s = store();
        let m = s.to_csr();
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 5);
        assert_eq!(m.nnz(), 6);
        assert_eq!(m.get(0, 2), Some(2.0));
    }
}

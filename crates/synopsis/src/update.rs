//! Incremental synopsis updating (paper §2.2, evaluated in Figure 3).
//!
//! Two situations of input-data change are supported:
//!
//! 1. **Additions** — new data points arrive: project them into the latent
//!    space (fold-in), insert new R-tree leaves.
//! 2. **Changes** — existing points' features change: delete their leaves,
//!    re-project, insert fresh leaves (which is why the paper finds change
//!    updates slower than pure additions — exactly reproducible here).
//!
//! After the tree is updated, only the aggregated points whose membership
//! actually changed are re-generated; untouched parts of the synopsis are
//! kept verbatim.

use std::time::{Duration, Instant};

use rayon::prelude::*;

use crate::build::SynopsisStore;
use crate::dataset::{RowStore, SparseRow};
use crate::synopsis::AggregatedPoint;

/// One input-data change.
#[derive(Clone, Debug)]
pub enum DataUpdate {
    /// A brand-new data point.
    Add(SparseRow),
    /// An existing point whose features/contents changed.
    Change {
        /// Id of the existing point.
        id: u64,
        /// Its new feature row.
        row: SparseRow,
    },
}

/// What one `apply_updates` batch did (Figure 3 reports its duration).
#[derive(Clone, Copy, Debug, Default)]
pub struct UpdateReport {
    /// Points added.
    pub added: usize,
    /// Points changed.
    pub changed: usize,
    /// Aggregated points re-generated.
    pub regenerated: usize,
    /// Aggregated points dropped (their node vanished from the cut level).
    pub removed_groups: usize,
    /// Aggregated points in the synopsis after the batch.
    pub group_count: usize,
    /// Wall-clock duration of the whole batch.
    pub duration: Duration,
}

impl SynopsisStore {
    /// Apply a batch of input-data changes, updating `dataset`, the R-tree,
    /// the index file, and (incrementally) the synopsis.
    ///
    /// # Panics
    /// Panics if a `Change` references an id not present in `dataset`.
    pub fn apply_updates(
        &mut self,
        dataset: &mut RowStore,
        updates: Vec<DataUpdate>,
    ) -> UpdateReport {
        let start = Instant::now();
        let mut report = UpdateReport::default();

        for update in updates {
            match update {
                DataUpdate::Add(row) => {
                    let reduced = self.reducer.project(&row);
                    let id = dataset.push_row(row);
                    self.tree.insert(id, &reduced);
                    report.added += 1;
                }
                DataUpdate::Change { id, row } => {
                    assert!(
                        (id as usize) < dataset.len(),
                        "Change references unknown id {id}"
                    );
                    let reduced = self.reducer.project(&row);
                    dataset.replace_row(id, row);
                    // Delete-then-insert of the leaf entry, per the paper.
                    self.tree.remove(id);
                    self.tree.insert(id, &reduced);
                    report.changed += 1;
                }
            }
        }

        // Reconcile the cut level: re-generate only groups whose membership
        // changed, drop groups whose node vanished, add new nodes' groups.
        let depth = self.depth();
        let nodes = self.tree.nodes_at_depth(depth);
        let current: std::collections::HashSet<_> = nodes.iter().copied().collect();

        let stale: Vec<_> = self
            .index
            .nodes()
            .filter(|n| !current.contains(n))
            .collect();
        for n in stale {
            self.index.remove(n);
            self.synopsis.remove(n);
            report.removed_groups += 1;
        }

        let mut dirty: Vec<(at_rtree::NodeId, Vec<u64>)> = Vec::new();
        for n in nodes {
            let mut members = self.tree.items_under(n);
            // Sorted order keeps aggregation summation identical to a fresh
            // build over the same group (float addition is order-sensitive).
            members.sort_unstable();
            if self.index.set_members(n, members.clone()) {
                dirty.push((n, members));
            }
        }
        let mode = self.mode;
        let regenerated: Vec<AggregatedPoint> = dirty
            .par_iter()
            .map(|(node, members)| AggregatedPoint {
                node: *node,
                info: dataset.aggregate(members, mode),
                member_count: members.len(),
            })
            .collect();
        report.regenerated = regenerated.len();
        for p in regenerated {
            self.synopsis.upsert(p);
        }

        report.group_count = self.synopsis.len();
        report.duration = start.elapsed();
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{SynopsisConfig, SynopsisStore};
    use crate::dataset::{AggregationMode, RowStore};
    use at_linalg::svd::SvdConfig;
    use at_rtree::RTreeConfig;

    fn dataset(n: usize) -> RowStore {
        let mut s = RowStore::new(30);
        for r in 0..n {
            let base = if r % 2 == 0 { 1.5 } else { 4.5 };
            let pairs: Vec<(u32, f64)> = (0..30u32)
                .filter(|c| !(r + *c as usize).is_multiple_of(4))
                .map(|c| (c, base + ((r as u32 + c) % 3) as f64 * 0.1))
                .collect();
            s.push_row(crate::dataset::SparseRow::from_pairs(pairs));
        }
        s
    }

    fn cfg() -> SynopsisConfig {
        SynopsisConfig {
            svd: SvdConfig::default().with_dims(3).with_epochs(20),
            rtree: RTreeConfig::default(),
            size_ratio: 20,
        }
    }

    fn new_row(seed: u32) -> SparseRow {
        SparseRow::from_pairs(
            (0..30u32)
                .filter(|c| !(c + seed).is_multiple_of(3))
                .map(|c| (c, 3.0 + ((c + seed) % 5) as f64 * 0.2))
                .collect(),
        )
    }

    #[test]
    fn additions_keep_store_consistent() {
        let mut data = dataset(200);
        let (mut store, _) = SynopsisStore::build(&data, AggregationMode::Mean, cfg());
        let updates: Vec<DataUpdate> = (0..20).map(|i| DataUpdate::Add(new_row(i))).collect();
        let report = store.apply_updates(&mut data, updates);
        assert_eq!(report.added, 20);
        assert_eq!(report.changed, 0);
        assert_eq!(data.len(), 220);
        store.validate().expect("consistent after additions");
    }

    #[test]
    fn changes_keep_store_consistent() {
        let mut data = dataset(200);
        let (mut store, _) = SynopsisStore::build(&data, AggregationMode::Mean, cfg());
        let updates: Vec<DataUpdate> = (0..20u64)
            .map(|id| DataUpdate::Change {
                id: id * 7,
                row: new_row(id as u32),
            })
            .collect();
        let report = store.apply_updates(&mut data, updates);
        assert_eq!(report.changed, 20);
        assert_eq!(data.len(), 200);
        store.validate().expect("consistent after changes");
    }

    #[test]
    fn update_touches_only_affected_groups() {
        let mut data = dataset(400);
        let (mut store, _) = SynopsisStore::build(&data, AggregationMode::Mean, cfg());
        let before = store.synopsis().len();
        // One single addition: far fewer groups regenerated than exist.
        let report = store.apply_updates(&mut data, vec![DataUpdate::Add(new_row(1))]);
        assert!(
            report.regenerated < before / 2 + 2,
            "one insert regenerated {}/{} groups",
            report.regenerated,
            before
        );
        store.validate().unwrap();
    }

    #[test]
    fn noop_batch_regenerates_nothing() {
        let mut data = dataset(150);
        let (mut store, _) = SynopsisStore::build(&data, AggregationMode::Mean, cfg());
        let report = store.apply_updates(&mut data, vec![]);
        assert_eq!(report.regenerated, 0);
        assert_eq!(report.added + report.changed, 0);
        store.validate().unwrap();
    }

    #[test]
    fn change_rewrite_same_values_may_move_point() {
        // Changing a point to identical features must at minimum keep the
        // store consistent (the leaf is removed and re-inserted).
        let mut data = dataset(100);
        let (mut store, _) = SynopsisStore::build(&data, AggregationMode::Mean, cfg());
        let row = data.row(5).clone();
        store.apply_updates(&mut data, vec![DataUpdate::Change { id: 5, row }]);
        store.validate().unwrap();
        assert!(store.tree().contains_item(5));
    }

    #[test]
    fn synopsis_info_correct_after_updates() {
        let mut data = dataset(200);
        let (mut store, _) = SynopsisStore::build(&data, AggregationMode::Mean, cfg());
        let updates: Vec<DataUpdate> = (0..10)
            .map(|i| DataUpdate::Add(new_row(i)))
            .chain((0..10u64).map(|id| DataUpdate::Change {
                id: id * 3 + 1,
                row: new_row(100 + id as u32),
            }))
            .collect();
        store.apply_updates(&mut data, updates);
        // Every aggregated point's info must equal a fresh aggregation of
        // its (updated) members.
        for p in store.synopsis().iter() {
            let members = store.index().members(p.node).unwrap();
            let expect = data.aggregate(members, AggregationMode::Mean);
            assert_eq!(p.info, expect, "stale aggregated info for {:?}", p.node);
        }
    }

    #[test]
    fn incremental_matches_full_rebuild_membership() {
        // After updates, the incremental index must partition exactly the
        // updated id space (0..len).
        let mut data = dataset(250);
        let (mut store, _) = SynopsisStore::build(&data, AggregationMode::Mean, cfg());
        let updates: Vec<DataUpdate> = (0..30).map(|i| DataUpdate::Add(new_row(i))).collect();
        store.apply_updates(&mut data, updates);
        let mut all: Vec<u64> = store
            .index()
            .iter()
            .flat_map(|(_, m)| m.iter().copied())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..280u64).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "unknown id")]
    fn change_unknown_id_panics() {
        let mut data = dataset(50);
        let (mut store, _) = SynopsisStore::build(&data, AggregationMode::Mean, cfg());
        store.apply_updates(
            &mut data,
            vec![DataUpdate::Change {
                id: 999,
                row: new_row(0),
            }],
        );
    }
}

//! Multi-resolution synopses — the paper's deferred extension.
//!
//! §2.3: "Applying a load-adaptive approach that dynamically selects a
//! synopsis of a different size according to the current load is possible
//! and it is studied in our previous work \[18\], \[20\], but it is beyond the
//! scope of this paper." This module implements that extension: cut the
//! *same* R-tree at several depths, materialize one synopsis per depth, and
//! let the online side pick a resolution per request.
//!
//! All resolutions share the tree and the reducer; only the index files and
//! aggregated rows differ, so the extra memory is roughly the sum of the
//! (small) synopses.

use crate::build::{SynopsisConfig, SynopsisStore};
use crate::dataset::{AggregationMode, RowStore};
use crate::index_file::IndexFile;
use crate::synopsis::{AggregatedPoint, Synopsis};
use rayon::prelude::*;

/// One resolution level of a [`MultiSynopsis`].
#[derive(Clone, Debug)]
pub struct Resolution {
    /// R-tree depth this level was cut at.
    pub depth: usize,
    /// Aggregated points at this level.
    pub synopsis: Synopsis,
    /// Membership mapping at this level.
    pub index: IndexFile,
}

impl Resolution {
    /// Number of aggregated points (the per-request synopsis cost driver).
    pub fn len(&self) -> usize {
        self.synopsis.len()
    }

    /// True when this resolution holds no aggregated points.
    pub fn is_empty(&self) -> bool {
        self.synopsis.is_empty()
    }
}

/// A stack of synopses of increasing resolution over one component's
/// subset, plus the shared offline artifacts.
#[derive(Clone, Debug)]
pub struct MultiSynopsis {
    /// The finest-resolution store (owns tree + reducer; used for updates).
    base: SynopsisStore,
    /// Levels sorted coarse → fine (fewer → more aggregated points).
    levels: Vec<Resolution>,
}

impl MultiSynopsis {
    /// Build resolutions for every tree level between the root's children
    /// and the base store's cut depth (inclusive). The base store itself is
    /// built with `config` as usual.
    pub fn build(dataset: &RowStore, mode: AggregationMode, config: SynopsisConfig) -> Self {
        let (base, _) = SynopsisStore::build(dataset, mode, config);
        let max_depth = base.depth();
        let tree = base.tree();
        let mut levels: Vec<Resolution> = (1..=max_depth)
            .into_par_iter()
            .map(|depth| {
                let nodes = tree.nodes_at_depth(depth);
                let index = IndexFile::new(
                    depth,
                    nodes.iter().map(|&n| {
                        let mut m = tree.items_under(n);
                        m.sort_unstable();
                        (n, m)
                    }),
                );
                let mut synopsis = Synopsis::new(mode);
                for (node, members) in index.iter() {
                    synopsis.upsert(AggregatedPoint {
                        node,
                        info: dataset.aggregate(members, mode),
                        member_count: members.len(),
                    });
                }
                Resolution {
                    depth,
                    synopsis,
                    index,
                }
            })
            .collect();
        levels.sort_by_key(|l| l.len());
        // The deepest cut equals the base store's own synopsis; make sure
        // it is present even when max_depth == 0 (single-level trees).
        if levels.is_empty() {
            levels.push(Resolution {
                depth: base.depth(),
                synopsis: base.synopsis().clone(),
                index: base.index().clone(),
            });
        }
        MultiSynopsis { base, levels }
    }

    /// The finest-resolution store (tree, reducer, update path).
    pub fn base(&self) -> &SynopsisStore {
        &self.base
    }

    /// Available resolutions, coarse → fine.
    pub fn levels(&self) -> &[Resolution] {
        &self.levels
    }

    /// The coarsest resolution (cheapest synopsis pass).
    pub fn coarsest(&self) -> &Resolution {
        &self.levels[0]
    }

    /// The finest resolution (best correlation estimates).
    pub fn finest(&self) -> &Resolution {
        self.levels.last().expect("at least one level")
    }

    /// Pick the finest resolution whose synopsis-processing cost fits a
    /// budget of `max_points` aggregated points — the load-adaptive
    /// selection rule: heavy load → small budget → coarse synopsis.
    pub fn select(&self, max_points: usize) -> &Resolution {
        self.levels
            .iter()
            .rev()
            .find(|l| l.len() <= max_points.max(1))
            .unwrap_or(&self.levels[0])
    }

    /// Translate a measured load level (utilization in `[0, 1+]`) into a
    /// point budget: at idle the finest synopsis is used; approaching
    /// saturation the budget shrinks toward the coarsest.
    pub fn select_for_utilization(&self, utilization: f64) -> &Resolution {
        let fine = self.finest().len() as f64;
        let coarse = self.coarsest().len() as f64;
        let u = utilization.clamp(0.0, 1.0);
        // Geometric interpolation: synopsis sizes grow multiplicatively
        // with depth, so interpolate in log space.
        let budget = (fine.ln() * (1.0 - u) + coarse.ln() * u).exp();
        self.select(budget.round() as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::SparseRow;
    use at_linalg::svd::SvdConfig;

    fn dataset(n: usize) -> RowStore {
        let mut s = RowStore::new(24);
        for r in 0..n as u32 {
            let base = if r % 2 == 0 { 1.5 } else { 4.0 };
            s.push_row(SparseRow::from_pairs(
                (0..24)
                    .map(|c| (c, base + ((r + c) % 3) as f64 * 0.2))
                    .collect(),
            ));
        }
        s
    }

    fn multi(n: usize) -> MultiSynopsis {
        MultiSynopsis::build(
            &dataset(n),
            AggregationMode::Mean,
            SynopsisConfig {
                svd: SvdConfig::default().with_epochs(15),
                size_ratio: 15,
                ..SynopsisConfig::default()
            },
        )
    }

    #[test]
    fn levels_are_sorted_and_distinct() {
        let m = multi(600);
        assert!(m.levels().len() >= 2, "need multiple resolutions");
        for w in m.levels().windows(2) {
            assert!(w[0].len() <= w[1].len());
        }
        assert!(m.coarsest().len() < m.finest().len());
    }

    #[test]
    fn every_level_partitions_the_dataset() {
        let m = multi(400);
        for level in m.levels() {
            let mut all: Vec<u64> = level
                .index
                .iter()
                .flat_map(|(_, members)| members.iter().copied())
                .collect();
            all.sort_unstable();
            assert_eq!(
                all,
                (0..400u64).collect::<Vec<_>>(),
                "depth {} does not partition",
                level.depth
            );
        }
    }

    #[test]
    fn aggregated_info_is_exact_per_level() {
        let data = dataset(300);
        let m = MultiSynopsis::build(
            &data,
            AggregationMode::Mean,
            SynopsisConfig {
                svd: SvdConfig::default().with_epochs(15),
                size_ratio: 10,
                ..SynopsisConfig::default()
            },
        );
        for level in m.levels() {
            for p in level.synopsis.iter() {
                let members = level.index.members(p.node).unwrap();
                assert_eq!(p.info, data.aggregate(members, AggregationMode::Mean));
            }
        }
    }

    #[test]
    fn select_respects_budget() {
        let m = multi(600);
        let coarse_len = m.coarsest().len();
        let fine_len = m.finest().len();
        assert_eq!(m.select(usize::MAX).len(), fine_len);
        assert!(m.select(coarse_len).len() <= coarse_len);
        // A budget below the coarsest still returns the coarsest (never
        // fail a request outright).
        assert_eq!(m.select(0).len(), coarse_len);
    }

    #[test]
    fn utilization_mapping_is_monotone() {
        let m = multi(600);
        let sizes: Vec<usize> = [0.0, 0.3, 0.6, 0.9, 1.0]
            .iter()
            .map(|&u| m.select_for_utilization(u).len())
            .collect();
        for w in sizes.windows(2) {
            assert!(w[1] <= w[0], "higher load must not pick finer: {sizes:?}");
        }
        assert_eq!(sizes[0], m.finest().len());
        assert_eq!(*sizes.last().unwrap(), m.coarsest().len());
    }
}

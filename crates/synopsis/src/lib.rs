//! # at-synopsis
//!
//! Offline synopsis management for the AccuracyTrader reproduction (Han et
//! al., ICPP 2016, §2.2/§3.1): synopsis **creation** (SVD reduction → R-tree
//! organization → information aggregation), the **index file** mapping
//! aggregated data points to original points, and incremental synopsis
//! **updating** driven by input-data additions and changes.
//!
//! ```
//! use at_synopsis::{AggregationMode, RowStore, SparseRow, SynopsisConfig, SynopsisStore};
//! use at_linalg::svd::SvdConfig;
//!
//! // A component's subset: 120 data points over 10 feature columns.
//! let mut data = RowStore::new(10);
//! for r in 0..120u32 {
//!     let base = if r % 2 == 0 { 1.0 } else { 4.0 };
//!     data.push_row(SparseRow::from_pairs(
//!         (0..10).map(|c| (c, base + ((r + c) % 3) as f64 * 0.1)).collect(),
//!     ));
//! }
//!
//! let cfg = SynopsisConfig {
//!     svd: SvdConfig::default().with_epochs(10),
//!     size_ratio: 12,
//!     ..SynopsisConfig::default()
//! };
//! let (mut store, report) = SynopsisStore::build(&data, AggregationMode::Mean, cfg);
//! assert!(report.n_aggregated <= 120 / 12 + 1);
//!
//! // Input data changed? Update incrementally.
//! use at_synopsis::DataUpdate;
//! let row = data.row(3).clone();
//! store.apply_updates(&mut data, vec![DataUpdate::Change { id: 3, row }]);
//! assert!(store.validate().is_ok());
//! ```

pub mod build;
pub mod dataset;
pub mod index_file;
pub mod multi;
pub mod reduce;
pub mod synopsis;
pub mod update;

pub use build::{BuildReport, SynopsisConfig, SynopsisStore};
pub use dataset::{AggregationMode, RowStore, SparseRow};
pub use index_file::IndexFile;
pub use multi::{MultiSynopsis, Resolution};
pub use reduce::Reducer;
pub use synopsis::{AggregatedPoint, Synopsis};
pub use update::{DataUpdate, UpdateReport};

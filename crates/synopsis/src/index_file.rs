//! The index file: aggregated data point → original data points.
//!
//! Paper §2.1: "The index file records the mapping relationship between each
//! aggregated data point and the original data points aggregated by it."
//! The mapping is keyed by the R-tree node that produced each aggregated
//! point, so incremental updates can diff old vs. new membership per node.

use at_rtree::NodeId;
use std::collections::HashMap;

/// Mapping from synopsis nodes (aggregated data points) to the ids of the
/// original data points each aggregates.
#[derive(Clone, Debug, Default)]
pub struct IndexFile {
    /// Depth of the R-tree level the synopsis was cut at.
    depth: usize,
    /// node -> sorted member ids.
    groups: HashMap<NodeId, Vec<u64>>,
}

impl IndexFile {
    /// Build from `(node, members)` pairs; member lists are sorted for
    /// cheap equality diffing during updates.
    pub fn new(depth: usize, entries: impl IntoIterator<Item = (NodeId, Vec<u64>)>) -> Self {
        let mut groups = HashMap::new();
        for (node, mut members) in entries {
            members.sort_unstable();
            groups.insert(node, members);
        }
        IndexFile { depth, groups }
    }

    /// R-tree depth this index was cut at.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Number of aggregated data points.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// True when the index is empty.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Sorted member ids of `node`, if it is an aggregated point.
    pub fn members(&self, node: NodeId) -> Option<&[u64]> {
        self.groups.get(&node).map(Vec::as_slice)
    }

    /// Iterate `(node, members)`.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &[u64])> {
        self.groups.iter().map(|(&n, m)| (n, m.as_slice()))
    }

    /// Total number of original points across all groups.
    pub fn total_members(&self) -> usize {
        self.groups.values().map(Vec::len).sum()
    }

    /// Average members per aggregated point — the paper reports 133.01
    /// original users and 42.55 original pages per aggregated point.
    pub fn mean_group_size(&self) -> f64 {
        if self.groups.is_empty() {
            0.0
        } else {
            self.total_members() as f64 / self.groups.len() as f64
        }
    }

    /// Replace the membership of `node` (insert if new); returns `true`
    /// when the stored membership actually changed.
    pub fn set_members(&mut self, node: NodeId, mut members: Vec<u64>) -> bool {
        members.sort_unstable();
        match self.groups.get(&node) {
            Some(old) if *old == members => false,
            _ => {
                self.groups.insert(node, members);
                true
            }
        }
    }

    /// Drop a node that no longer exists at the synopsis depth.
    pub fn remove(&mut self, node: NodeId) -> bool {
        self.groups.remove(&node).is_some()
    }

    /// Node ids currently present, in unspecified order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.groups.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(i: u32) -> NodeId {
        NodeId::from_index(i)
    }

    #[test]
    fn build_and_query() {
        let (a, b) = (node(0), node(1));
        let idx = IndexFile::new(2, vec![(a, vec![3, 1, 2]), (b, vec![7])]);
        assert_eq!(idx.depth(), 2);
        assert_eq!(idx.len(), 2);
        assert_eq!(idx.members(a), Some(&[1, 2, 3][..]));
        assert_eq!(idx.total_members(), 4);
        assert_eq!(idx.mean_group_size(), 2.0);
    }

    #[test]
    fn set_members_reports_changes() {
        let a = node(0);
        let mut idx = IndexFile::new(0, vec![(a, vec![1, 2])]);
        assert!(!idx.set_members(a, vec![2, 1]), "same set, different order");
        assert!(idx.set_members(a, vec![1, 2, 3]));
        assert_eq!(idx.members(a), Some(&[1, 2, 3][..]));
    }

    #[test]
    fn remove_node() {
        let (a, b) = (node(0), node(1));
        let mut idx = IndexFile::new(0, vec![(a, vec![1]), (b, vec![2])]);
        assert!(idx.remove(a));
        assert!(!idx.remove(a));
        assert_eq!(idx.len(), 1);
        assert!(idx.members(a).is_none());
    }

    #[test]
    fn empty_index() {
        let idx = IndexFile::default();
        assert!(idx.is_empty());
        assert_eq!(idx.mean_group_size(), 0.0);
    }
}

//! Synopsis creation: the paper's three offline steps.
//!
//! 1. **Dimensionality reduction** — incremental SVD to a `j`-dimensional
//!    dense dataset ([`crate::reduce::Reducer`]).
//! 2. **Similar-points organization** — bulk-load an R-tree over the
//!    reduced points and select a depth whose node count makes the synopsis
//!    roughly `size_ratio` times smaller than the subset.
//! 3. **Information aggregation** — fold each node's original (unreduced)
//!    member rows into an aggregated data point. This is the expensive step
//!    (`O(k × v)`), parallelized with rayon — our stand-in for the paper's
//!    Spark acceleration.

use std::time::{Duration, Instant};

use at_linalg::svd::SvdConfig;
use at_rtree::{RTree, RTreeConfig};
use rayon::prelude::*;

use crate::dataset::{AggregationMode, RowStore};
use crate::index_file::IndexFile;
use crate::reduce::Reducer;
use crate::synopsis::{AggregatedPoint, Synopsis};

/// Configuration of the synopsis pipeline.
#[derive(Clone, Copy, Debug)]
pub struct SynopsisConfig {
    /// Step-1 SVD hyper-parameters (paper: 3 dims, 100 epochs each).
    pub svd: SvdConfig,
    /// Step-2 R-tree fanout bounds.
    pub rtree: RTreeConfig,
    /// Target size ratio: the synopsis should hold about
    /// `subset_size / size_ratio` aggregated points (paper: ~100).
    pub size_ratio: usize,
}

impl Default for SynopsisConfig {
    fn default() -> Self {
        SynopsisConfig {
            svd: SvdConfig::default(),
            rtree: RTreeConfig::default(),
            size_ratio: 100,
        }
    }
}

/// Wall-clock costs and shape of one synopsis build (the paper reports
/// per-step overheads in §4.2).
#[derive(Clone, Copy, Debug)]
pub struct BuildReport {
    /// Step-1 (SVD) time.
    pub reduce_time: Duration,
    /// Step-2 (R-tree + depth selection) time.
    pub organize_time: Duration,
    /// Step-3 (aggregation) time.
    pub aggregate_time: Duration,
    /// Points in the subset.
    pub n_points: usize,
    /// Aggregated points in the synopsis.
    pub n_aggregated: usize,
    /// Mean original points per aggregated point (the paper's 133.01 /
    /// 42.55 figures).
    pub mean_group_size: f64,
}

impl BuildReport {
    /// Total creation time.
    pub fn total_time(&self) -> Duration {
        self.reduce_time + self.organize_time + self.aggregate_time
    }
}

/// Everything the offline module persists for one component: the latent
/// space, the R-tree, the index file, and the synopsis. §3.1: "Once the
/// synopsis is generated, the R-tree and the index file are stored and they
/// can be used as the starting point of synopsis updating."
#[derive(Clone, Debug)]
pub struct SynopsisStore {
    pub(crate) config: SynopsisConfig,
    pub(crate) mode: AggregationMode,
    pub(crate) reducer: Reducer,
    pub(crate) tree: RTree,
    /// Synopsis level expressed as height above the leaves, so it survives
    /// tree height changes during incremental updates.
    pub(crate) level_above_leaves: usize,
    pub(crate) index: IndexFile,
    pub(crate) synopsis: Synopsis,
}

impl SynopsisStore {
    /// Run the full three-step creation pipeline over `dataset`.
    pub fn build(
        dataset: &RowStore,
        mode: AggregationMode,
        config: SynopsisConfig,
    ) -> (SynopsisStore, BuildReport) {
        // Step 1: dimensionality reduction.
        let t0 = Instant::now();
        let reducer = Reducer::fit(dataset, config.svd);
        let reduce_time = t0.elapsed();

        // Step 2: organize similar points with an R-tree; cut a depth.
        let t1 = Instant::now();
        let points: Vec<(u64, Vec<f64>)> = dataset
            .ids()
            .map(|id| (id, reducer.reduced(id).to_vec()))
            .collect();
        let tree = RTree::bulk_load(reducer.dims().max(1), config.rtree, points);
        let budget = (dataset.len() / config.size_ratio.max(1)).max(1);
        let depth = tree.select_depth(budget);
        let index = IndexFile::new(
            depth,
            tree.nodes_at_depth(depth)
                .into_iter()
                .map(|n| (n, tree.items_under(n))),
        );
        let organize_time = t1.elapsed();

        // Step 3: aggregate original information per group (rayon-parallel,
        // replacing the paper's Spark step).
        let t2 = Instant::now();
        let groups: Vec<(at_rtree::NodeId, Vec<u64>)> =
            index.iter().map(|(n, m)| (n, m.to_vec())).collect();
        let aggregated: Vec<AggregatedPoint> = groups
            .par_iter()
            .map(|(node, members)| AggregatedPoint {
                node: *node,
                info: dataset.aggregate(members, mode),
                member_count: members.len(),
            })
            .collect();
        let mut synopsis = Synopsis::new(mode);
        for p in aggregated {
            synopsis.upsert(p);
        }
        let aggregate_time = t2.elapsed();

        let report = BuildReport {
            reduce_time,
            organize_time,
            aggregate_time,
            n_points: dataset.len(),
            n_aggregated: synopsis.len(),
            mean_group_size: index.mean_group_size(),
        };
        let level_above_leaves = tree.height() - 1 - depth;
        (
            SynopsisStore {
                config,
                mode,
                reducer,
                tree,
                level_above_leaves,
                index,
                synopsis,
            },
            report,
        )
    }

    /// The synopsis (aggregated data points).
    pub fn synopsis(&self) -> &Synopsis {
        &self.synopsis
    }

    /// The index file (aggregated point → original point ids).
    pub fn index(&self) -> &IndexFile {
        &self.index
    }

    /// The underlying R-tree.
    pub fn tree(&self) -> &RTree {
        &self.tree
    }

    /// The fitted dimensionality reducer.
    pub fn reducer(&self) -> &Reducer {
        &self.reducer
    }

    /// The depth currently cut for the synopsis.
    pub fn depth(&self) -> usize {
        self.tree
            .height()
            .saturating_sub(1 + self.level_above_leaves)
    }

    /// Aggregation mode.
    pub fn mode(&self) -> AggregationMode {
        self.mode
    }

    /// Pipeline configuration.
    pub fn config(&self) -> SynopsisConfig {
        self.config
    }

    /// Consistency check between tree, index file, and synopsis — every
    /// node at the synopsis depth must have matching index membership and
    /// an aggregated point, and nothing extra may linger.
    pub fn validate(&self) -> Result<(), String> {
        self.tree.validate()?;
        let nodes = self.tree.nodes_at_depth(self.depth());
        if nodes.len() != self.index.len() {
            return Err(format!(
                "index has {} groups but depth {} has {} nodes",
                self.index.len(),
                self.depth(),
                nodes.len()
            ));
        }
        if nodes.len() != self.synopsis.len() {
            return Err(format!(
                "synopsis has {} points but depth has {} nodes",
                self.synopsis.len(),
                nodes.len()
            ));
        }
        for n in nodes {
            let mut members = self.tree.items_under(n);
            members.sort_unstable();
            match self.index.members(n) {
                None => return Err(format!("node {n:?} missing from index file")),
                Some(m) if m != members.as_slice() => {
                    return Err(format!("node {n:?} membership stale in index file"))
                }
                _ => {}
            }
            match self.synopsis.point(n) {
                None => return Err(format!("node {n:?} missing from synopsis")),
                Some(p) if p.member_count != members.len() => {
                    return Err(format!("node {n:?} member_count stale in synopsis"))
                }
                _ => {}
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::SparseRow;

    /// Two latent "taste" groups of users over 40 items.
    pub(crate) fn two_group_dataset(n: usize) -> RowStore {
        let mut s = RowStore::new(40);
        for r in 0..n {
            let high_first = r % 2 == 0;
            let pairs: Vec<(u32, f64)> = (0..40u32)
                .filter(|c| !(r + *c as usize).is_multiple_of(3)) // ~2/3 density
                .map(|c| {
                    let base = if high_first ^ (c < 20) { 1.5 } else { 4.5 };
                    (c, base + ((r as u32 + c) % 4) as f64 * 0.1)
                })
                .collect();
            s.push_row(SparseRow::from_pairs(pairs));
        }
        s
    }

    fn quick_config(ratio: usize) -> SynopsisConfig {
        SynopsisConfig {
            svd: SvdConfig::default().with_dims(3).with_epochs(25),
            rtree: RTreeConfig::default(),
            size_ratio: ratio,
        }
    }

    #[test]
    fn build_produces_consistent_store() {
        let data = two_group_dataset(300);
        let (store, report) = SynopsisStore::build(&data, AggregationMode::Mean, quick_config(20));
        store.validate().expect("store consistent after build");
        assert_eq!(report.n_points, 300);
        assert!(report.n_aggregated >= 1);
        // Depth selection is geometric-closest: the aggregated count may
        // overshoot the target (300/20 = 15) by up to ~the tree fanout's
        // square root, but must stay within a small constant factor and
        // remain much smaller than the subset.
        let target = 300 / 20;
        assert!(
            report.n_aggregated <= target * 4 && report.n_aggregated >= target / 4,
            "synopsis size {} far from target {target}",
            report.n_aggregated
        );
        assert!(report.mean_group_size >= 5.0);
    }

    #[test]
    fn synopsis_much_smaller_than_subset() {
        let data = two_group_dataset(500);
        let (store, _) = SynopsisStore::build(&data, AggregationMode::Mean, quick_config(50));
        assert!(store.synopsis().len() * 25 <= data.len());
    }

    #[test]
    fn groups_partition_the_dataset() {
        let data = two_group_dataset(250);
        let (store, _) = SynopsisStore::build(&data, AggregationMode::Mean, quick_config(25));
        let mut all: Vec<u64> = store
            .index()
            .iter()
            .flat_map(|(_, m)| m.iter().copied())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..250u64).collect::<Vec<_>>());
    }

    #[test]
    fn aggregated_info_reflects_members() {
        let data = two_group_dataset(200);
        let (store, _) = SynopsisStore::build(&data, AggregationMode::Mean, quick_config(20));
        // For each aggregated point, its info at any column must be the mean
        // of the members having that column.
        for p in store.synopsis().iter() {
            let members = store.index().members(p.node).unwrap();
            let expect = data.aggregate(members, AggregationMode::Mean);
            assert_eq!(p.info, expect, "node {:?}", p.node);
        }
    }

    #[test]
    fn grouping_respects_taste_clusters() {
        // Members of one aggregated point should be predominantly from one
        // taste group (even ids vs odd ids in two_group_dataset).
        let data = two_group_dataset(400);
        // Small ratio -> many groups, so taste purity is actually testable
        // (with only 2-3 coarse groups one of them must straddle).
        let (store, _) = SynopsisStore::build(&data, AggregationMode::Mean, quick_config(10));
        let mut pure = 0usize;
        let mut total = 0usize;
        for (_, members) in store.index().iter() {
            let even = members.iter().filter(|&&m| m % 2 == 0).count();
            let frac = even as f64 / members.len() as f64;
            if !(0.25..=0.75).contains(&frac) {
                pure += 1;
            }
            total += 1;
        }
        assert!(
            pure * 10 >= total * 7,
            "only {pure}/{total} groups are taste-dominant"
        );
    }

    #[test]
    fn merge_mode_sums_contents() {
        let data = two_group_dataset(100);
        let (store, _) = SynopsisStore::build(&data, AggregationMode::Merge, quick_config(10));
        for p in store.synopsis().iter() {
            let members = store.index().members(p.node).unwrap();
            let expect = data.aggregate(members, AggregationMode::Merge);
            assert_eq!(p.info, expect);
        }
    }

    #[test]
    fn report_times_are_populated() {
        let data = two_group_dataset(150);
        let (_, report) = SynopsisStore::build(&data, AggregationMode::Mean, quick_config(15));
        // Durations are non-zero in aggregate (individual steps may be fast).
        assert!(report.total_time() > Duration::ZERO);
    }

    #[test]
    fn tiny_dataset_single_group() {
        let data = two_group_dataset(6);
        let (store, report) = SynopsisStore::build(&data, AggregationMode::Mean, quick_config(100));
        store.validate().unwrap();
        assert_eq!(report.n_aggregated, 1, "6 points / ratio 100 -> one group");
    }
}

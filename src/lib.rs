//! # accuracytrader
//!
//! A from-scratch Rust reproduction of **AccuracyTrader** (Rui Han, Siguang
//! Huang, Fei Tang, Fugui Chang, Jianfeng Zhan — *AccuracyTrader:
//! Accuracy-aware Approximate Processing for Low Tail Latency and High
//! Result Accuracy in Cloud Online Services*, ICPP 2016).
//!
//! AccuracyTrader trades a *little* result accuracy for a *lot* of tail
//! latency in fan-out online services. Offline, each component compresses
//! its subset of input data into a small **synopsis** of aggregated data
//! points (incremental SVD → R-tree → per-group aggregation). Online, every
//! request is answered from the synopsis first — fast even under heavy load
//! — and then improved with the original data **most correlated with this
//! request's accuracy**, best groups first, until the latency deadline.
//!
//! This facade re-exports the whole workspace:
//!
//! | crate | contents |
//! |-------|----------|
//! | [`linalg`] | dense/sparse matrices, incremental (Funk) SVD, Pearson, percentiles |
//! | [`rtree`] | depth-balanced R-tree (insert/delete/bulk-load/levels) |
//! | [`synopsis`] | offline module: synopsis creation, index file, incremental updating |
//! | [`core`] | online module: Algorithm 1, components, fan-out services |
//! | [`recommender`] | user-based CF service + AccuracyTrader adapter |
//! | [`search`] | inverted-index search engine + AccuracyTrader adapter |
//! | [`sim`] | discrete-event cluster simulator (queueing, interference, 4 techniques) |
//! | [`workloads`] | synthetic datasets, query logs, arrival processes, interference traces |
//!
//! ## Quickstart
//!
//! ```
//! use accuracytrader::prelude::*;
//!
//! // A component's subset: 200 users × 40 items of ratings.
//! let data = RatingsDataset::generate(RatingsConfig {
//!     n_users: 200, n_items: 40, ratings_per_user: 20,
//!     ..RatingsConfig::small()
//! });
//! let matrix = rating_matrix(200, 40, &data.ratings);
//!
//! // Offline: build the synopsis. Online: answer under a budget.
//! let cfg = SynopsisConfig { size_ratio: 15, ..SynopsisConfig::default() };
//! let (component, _) = Component::build(matrix, AggregationMode::Mean, cfg, CfService);
//!
//! let active = ActiveUser::new(
//!     SparseRow::from_pairs(vec![(0, 5.0), (1, 3.0), (2, 1.0)]),
//!     vec![5, 7],
//! );
//! let outcome = component.approx_budgeted(&active, None, 3); // 3 best groups
//! let predictions = compose_predictions(&active, &[outcome.output]);
//! assert_eq!(predictions.len(), 2);
//! ```

pub use at_core as core;
pub use at_linalg as linalg;
pub use at_recommender as recommender;
pub use at_rtree as rtree;
pub use at_search as search;
pub use at_sim as sim;
pub use at_synopsis as synopsis;
pub use at_workloads as workloads;

/// The most commonly used items in one import.
pub mod prelude {
    pub use at_core::{
        partition_rows, Algorithm1, ApproximateService, Component, Correlation, Ctx,
        FanOutService, Outcome, ProcessingConfig,
    };
    pub use at_linalg::svd::{IncrementalSvd, SvdConfig};
    pub use at_recommender::{
        compose_predictions, rating_matrix, ActiveUser, CfService, PredictionAcc,
    };
    pub use at_rtree::{RTree, RTreeConfig};
    pub use at_search::{SearchRequest, SearchService, TopK};
    pub use at_sim::{simulate, CostModel, SimConfig, Technique};
    pub use at_synopsis::{
        AggregationMode, DataUpdate, RowStore, SparseRow, SynopsisConfig, SynopsisStore,
    };
    pub use at_workloads::{
        Corpus, CorpusConfig, DiurnalPattern, QueryGenerator, RatingsConfig, RatingsDataset,
    };
}

//! # accuracytrader
//!
//! A from-scratch Rust reproduction of **AccuracyTrader** (Rui Han, Siguang
//! Huang, Fei Tang, Fugui Chang, Jianfeng Zhan — *AccuracyTrader:
//! Accuracy-aware Approximate Processing for Low Tail Latency and High
//! Result Accuracy in Cloud Online Services*, ICPP 2016).
//!
//! AccuracyTrader trades a *little* result accuracy for a *lot* of tail
//! latency in fan-out online services. Offline, each component compresses
//! its subset of input data into a small **synopsis** of aggregated data
//! points (incremental SVD → R-tree → per-group aggregation). Online, every
//! request is answered from the synopsis first — fast even under heavy load
//! — and then improved with the original data **most correlated with this
//! request's accuracy**, best groups first, until the latency deadline.
//!
//! The online API is policy-driven: an
//! [`ExecutionPolicy`](crate::core::ExecutionPolicy) (`Exact`,
//! `SynopsisOnly`, `Budgeted`, `Deadline`) says how much work one request
//! may spend, and [`FanOutService::serve`](crate::core::FanOutService::serve)
//! runs the whole lifecycle — rayon fan-out over components, composition
//! through the service's [`ComposableService`](crate::core::ComposableService)
//! hook, and aggregated telemetry (per-component coverage, skipped stale
//! sets, wall-clock elapsed) in the returned
//! [`ServiceResponse`](crate::core::ServiceResponse). Request *streams*
//! ride [`FanOutService::serve_batch`](crate::core::FanOutService::serve_batch):
//! one fan-out and one synopsis pass per component cover the whole batch
//! (duplicate requests collapsed under clock-free policies, outputs
//! recycled through an [`OutputPool`](crate::core::OutputPool)), provably
//! equivalent to serving the requests one at a time. The async front end
//! ([`server::Server`](crate::server::Server)) multiplexes thousands of
//! in-flight requests over that machinery: a bounded submission queue
//! stamps each request's submission instant (queue wait counts against
//! `Deadline` policies), a dispatcher thread drains micro-batches, and
//! per-request [`Ticket`](crate::server::Ticket)s deliver responses.
//! Under overload, a pluggable admission controller
//! ([`server::LadderController`](crate::server::LadderController)) walks
//! requests down a [`DegradationLadder`](crate::core::DegradationLadder)
//! (`Deadline` → `Budgeted` → `SynopsisOnly`) from sliding-window queue
//! telemetry ([`server::LoadSnapshot`](crate::server::LoadSnapshot)), so
//! a diurnal peak degrades a fraction of traffic instead of blowing
//! every deadline; responses record the
//! [`policy_applied`](crate::core::ServiceResponse::policy_applied).
//! To scale past one serving loop,
//! [`server::ShardedServer`](crate::server::ShardedServer) runs N workers
//! — each with its own queue, dispatcher, stats, controller, and
//! supervisor — behind a routing front end
//! ([`server::RoutingStrategy`](crate::server::RoutingStrategy)): hash
//! affinity keeps duplicate-collapse locality, work stealing rebalances
//! skew, and per-worker ladders isolate hot shards.
//!
//! This facade re-exports the whole workspace:
//!
//! | crate | contents |
//! |-------|----------|
//! | [`linalg`] | dense/sparse matrices, incremental (Funk) SVD, Pearson, percentiles |
//! | [`rtree`] | depth-balanced R-tree (insert/delete/bulk-load/levels) |
//! | [`synopsis`] | offline module: synopsis creation, index file, incremental updating |
//! | [`core`] | online module: execution policies, Algorithm 1, components, fan-out services |
//! | [`server`] | async serving front end: bounded queue, micro-batching dispatcher, tickets |
//! | [`recommender`] | user-based CF service + AccuracyTrader adapter |
//! | [`search`] | inverted-index search engine + AccuracyTrader adapter |
//! | [`sim`] | discrete-event cluster simulator (queueing, interference, 4 techniques) |
//! | [`workloads`] | synthetic datasets, query logs, arrival processes, interference traces |
//!
//! ## Quickstart
//!
//! ```
//! use accuracytrader::prelude::*;
//!
//! // 600 users × 40 items of ratings, partitioned over 3 components.
//! let data = RatingsDataset::generate(RatingsConfig {
//!     n_users: 600, n_items: 40, ratings_per_user: 20,
//!     ..RatingsConfig::small()
//! });
//! let matrix = rating_matrix(600, 40, &data.ratings);
//! let rows: Vec<SparseRow> = matrix.ids().map(|id| matrix.row(id).clone()).collect();
//! let subsets = partition_rows(40, rows, 3).expect("n >= 1");
//!
//! // Offline: build every component's synopsis (parallel pipeline).
//! let cfg = SynopsisConfig { size_ratio: 15, ..SynopsisConfig::default() };
//! let service = FanOutService::build(subsets, AggregationMode::Mean, cfg, || CfService);
//!
//! // Online: serve one request end to end under different policies.
//! let active = ActiveUser::new(
//!     SparseRow::from_pairs(vec![(0, 5.0), (1, 3.0), (2, 1.0)]),
//!     vec![5, 7],
//! );
//! // Fast path: answer from the synopses, improve with the 3 best
//! // correlated groups per component.
//! let approx = service.serve(&active, &ExecutionPolicy::budgeted(3));
//! assert_eq!(approx.response.len(), 2); // one prediction per target item
//! assert!(approx.mean_coverage() > 0.0);
//!
//! // Wall-clock production policy: the paper's 100 ms deadline.
//! let timed = service.serve(&active, &ExecutionPolicy::recommender());
//! assert_eq!(timed.response.len(), 2);
//!
//! // Baseline: exact processing over all original data.
//! let exact = service.serve(&active, &ExecutionPolicy::Exact);
//! assert_eq!(exact.min_coverage(), 1.0);
//! ```

pub use at_core as core;
pub use at_linalg as linalg;
pub use at_recommender as recommender;
pub use at_rtree as rtree;
pub use at_search as search;
pub use at_server as server;
pub use at_sim as sim;
pub use at_synopsis as synopsis;
pub use at_workloads as workloads;

/// The most commonly used items in one import.
pub mod prelude {
    pub use at_core::{
        partition_rows, Algorithm1, ApproximateService, BreakerConfig, BreakerState,
        CircuitBreaker, Component, ComponentTelemetry, ComposableService, Correlation, Ctx,
        DegradationLadder, ExecutionPolicy, FanOutService, FaultInjector, FaultKind, FaultRule,
        FaultSite, FaultyService, Outcome, OutputPool, RouteKey, ServiceError, ServiceResponse,
    };
    pub use at_linalg::svd::{IncrementalSvd, SvdConfig};
    pub use at_recommender::{rating_matrix, ActiveUser, CfService, PredictionAcc};
    pub use at_rtree::{RTree, RTreeConfig};
    pub use at_search::{SearchRequest, SearchService, TopK};
    pub use at_server::{
        AdmissionController, ClusterStats, Decision, LadderConfig, LadderController, LoadSnapshot,
        NoControl, RoutingStrategy, Server, ServerConfig, ServerStats, ShardConfig, ShardedServer,
        SubmitError, Ticket,
    };
    pub use at_sim::{
        pick_strategy, simulate, simulate_shards, CostModel, ShardSimConfig, ShardStrategy,
        SimConfig, Technique,
    };
    pub use at_synopsis::{
        AggregationMode, DataUpdate, RowStore, SparseRow, SynopsisConfig, SynopsisStore,
    };
    pub use at_workloads::{
        Corpus, CorpusConfig, DiurnalPattern, QueryGenerator, RatingsConfig, RatingsDataset,
    };
}
